"""Arena-backed fused execution: parity, aliasing, fusion, fallbacks.

PR 10's runtime contract, pinned from every side:

* **alias accounting** — reshape/flatten executors return *views*; the
  refcounted arena charges each base buffer once, so peak resident bytes
  match reality instead of double-counting every view;
* **fused-activation consistency** — ``mul`` applies its fused activation
  attr on every backend (builtin float, batched, quantized), byte-identical
  across all of them;
* **arena execution** — with a verified :class:`ArenaLayout` attached, the
  interpreter serves tensors from preallocated static offsets and stays
  byte-identical to both the refcount path and the uncompiled seed path,
  zoo-wide, float and quantized, at every batch size;
* **batch-mismatch fallback** — a layout packed at one batch never serves
  another: the invoke falls back to refcounting (one warning, ever) and
  remains byte-identical;
* **compile-time fusion** — elementwise/activation chains collapse into
  execution units, while observer/profile records stay per logical node so
  EXray logs are unchanged;
* **verifier skepticism** — ``verify_layout`` re-proves every alias claim
  from the graph; a layout asserting a false alias is rejected, never
  trusted.
"""

import warnings
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import pack_arena, verify_layout
from repro.graph import GraphBuilder
from repro.instrument import EdgeMLMonitor, EXrayLog
from repro.runtime import (
    BatchedOpResolver,
    CHAIN_OPS,
    Interpreter,
    OpResolver,
    ReferenceOpResolver,
    compile_plan,
)
from repro.zoo import get_model, list_models

# Models whose mobile stage cannot be fully-integer quantized (embedding /
# resize / in-graph normalize ops); their quantized stage is skipped, the
# float stages still run through the whole matrix.
UNQUANTIZABLE = frozenset(
    {"micro_bert", "nnlm_lite", "deeplab_lite", "effdet_lite"})


def make_feeds(graph, batch, seed=0):
    """Random feeds honouring each input's spec (int specs get ids)."""
    rng = np.random.default_rng(seed)
    feeds = {}
    for name in graph.inputs:
        spec = graph.spec(name)
        shape = tuple(batch if d is None else d for d in spec.shape)
        if spec.dtype.startswith("float"):
            feeds[name] = rng.normal(size=shape).astype(spec.dtype)
        else:
            feeds[name] = rng.integers(0, 16, size=shape).astype(spec.dtype)
    return feeds


# ------------------------------------------------------- alias accounting

class TestAliasAccounting:
    def _flatten_graph(self, rng):
        b = GraphBuilder("flatview")
        x = b.input("input", (None, 4, 4, 8))
        h = b.add("flatten", x, name="flat")
        h = b.dense(h, rng.normal(size=(128, 10)).astype(np.float32),
                    rng.normal(size=(10,)).astype(np.float32), name="logits")
        b.mark_output(h)
        return b.finish()

    @pytest.mark.parametrize("use_plan", [False, True])
    def test_view_not_double_counted(self, rng, use_plan):
        # flatten returns a view of its input: true resident bytes while
        # dense runs are input + logits, and nothing more. The old
        # per-array accounting charged the flattened view again (and
        # "freed" bytes that stayed resident through the view).
        graph = self._flatten_graph(rng)
        x = rng.normal(size=(2, 4, 4, 8)).astype(np.float32)
        interp = Interpreter(graph, use_plan=use_plan)
        out = interp.invoke(x)["logits"]
        true_resident = x.nbytes + out.nbytes
        assert interp.last_peak_activation_bytes == true_resident

    def test_view_kept_alive_by_consumer(self, rng):
        # Freeing the *input name* after flatten must not release the
        # buffer the flattened view still references: the bytes stay
        # charged until the last name dies.
        graph = self._flatten_graph(rng)
        x = rng.normal(size=(1, 4, 4, 8)).astype(np.float32)
        interp = Interpreter(graph)
        out = interp.invoke(x)["logits"]
        # Peak below input+flat+logits (the double-count) but not below
        # input+logits (the premature free).
        assert interp.last_peak_activation_bytes >= x.nbytes + out.nbytes
        assert interp.last_peak_activation_bytes < 2 * x.nbytes + out.nbytes


# --------------------------------------------- fused activation on mul

class TestMulFusedActivation:
    def _mul_graph(self, activation):
        b = GraphBuilder("mulact")
        x = b.input("a", (None, 6, 6, 4))
        y = b.input("b", (None, 6, 6, 4))
        h = b.add("mul", [x, y], name="prod",
                  attrs={"activation": activation})
        b.mark_output(h)
        return b.finish()

    @pytest.mark.parametrize("activation", ["relu", "relu6"])
    def test_float_backends_apply_and_agree(self, rng, activation):
        graph = self._mul_graph(activation)
        feeds = make_feeds(graph, 5)
        ref = Interpreter(graph, ReferenceOpResolver()).invoke(feeds)["prod"]
        # The activation actually fired (negative products exist pre-clip).
        raw = feeds["a"] * feeds["b"]
        assert (raw < 0).any() and (ref >= 0).all()
        np.testing.assert_array_equal(
            ref, np.clip(raw, 0.0, 6.0 if activation == "relu6" else None))
        for resolver in (OpResolver(), BatchedOpResolver()):
            got = Interpreter(graph, resolver).invoke(feeds)["prod"]
            np.testing.assert_array_equal(ref, got)

    def test_quantized_mul_applies_activation(self, small_cnn_quantized, rng):
        # The quantized graph pins the end-to-end path; here we only need
        # the executor not to drop the attr: a quantized mul with relu
        # never emits below the zero-point's dequantized value.
        from repro.kernels.quantized.optimized import qmul
        from repro.quantize import QuantParams
        a_p = QuantParams(scale=0.05, zero_point=0)
        b_p = QuantParams(scale=0.04, zero_point=0)
        o_p = QuantParams(scale=0.02, zero_point=10)
        a_q = rng.integers(-100, 100, size=(2, 8)).astype(np.int8)
        b_q = rng.integers(-100, 100, size=(2, 8)).astype(np.int8)
        plain = qmul(a_q, a_p, b_q, b_p, o_p)
        relu = qmul(a_q, a_p, b_q, b_p, o_p, activation="relu")
        assert (plain < o_p.zero_point).any()
        assert (relu >= o_p.zero_point).all()


# --------------------------------------------------- batch-mismatch fallback

class TestBatchMismatchFallback:
    def test_fallback_identical_and_warns_once(self, small_cnn, rng):
        x4 = rng.normal(size=(4, 8, 8, 3)).astype(np.float32)
        x2 = rng.normal(size=(2, 8, 8, 3)).astype(np.float32)
        seed = Interpreter(small_cnn, use_plan=False)
        interp = Interpreter(small_cnn, arena=True, arena_batch=4)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            got = interp.invoke_single(x2)
        assert interp.last_arena_status == "fallback:batch=2"
        relevant = [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert len(relevant) == 1
        assert "batch 4" in str(relevant[0].message)
        np.testing.assert_array_equal(got, seed.invoke_single(x2))

        # The warning fires once per interpreter, not once per invoke.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            interp.invoke_single(x2)
        assert not [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]

        # A matching batch still serves from the arena, byte-identically.
        np.testing.assert_array_equal(
            interp.invoke_single(x4), seed.invoke_single(x4))
        assert interp.last_arena_status == "arena"

    def test_layout_records_packed_batch(self, small_cnn):
        plan = compile_plan(small_cnn, OpResolver(), arena=True,
                            arena_batch=8)
        assert plan.arena.batch == 8


# ------------------------------------------------------- zoo parity matrix

class TestZooParityMatrix:
    @pytest.fixture(scope="class")
    def stages(self):
        cache = {}

        def build(model, stage):
            key = (model, stage)
            if key not in cache:
                cache[key] = get_model(model, stage)
            return cache[key]

        return build

    @pytest.mark.parametrize("model", sorted(list_models()))
    def test_paths_byte_identical(self, stages, model):
        stage_names = ["mobile", "quantized"]
        if model in UNQUANTIZABLE:
            stage_names = ["mobile"]
        for stage in stage_names:
            graph = stages(model, stage)
            for resolver_cls in (OpResolver, BatchedOpResolver):
                for batch in (1, 4, 32):
                    feeds = make_feeds(graph, batch)
                    seed = Interpreter(graph, resolver_cls(),
                                       use_plan=False).invoke(feeds)
                    plan = Interpreter(graph, resolver_cls()).invoke(feeds)
                    arena_interp = Interpreter(
                        graph, resolver_cls(), arena=True, fuse=True,
                        arena_batch=batch)
                    arena = arena_interp.invoke(feeds)
                    assert arena_interp.last_arena_status == "arena", \
                        (model, stage, resolver_cls.__name__, batch)
                    for t in seed:
                        ctx = (model, stage, resolver_cls.__name__, batch, t)
                        np.testing.assert_array_equal(
                            seed[t], plan[t], err_msg=repr(ctx))
                        np.testing.assert_array_equal(
                            seed[t], arena[t], err_msg=repr(ctx))

    @pytest.mark.parametrize("stage", ["mobile", "quantized"])
    def test_exray_layer_schedule_unchanged(self, stages, stage):
        # Fusion must be invisible to EXray: same layers, same order, same
        # per-layer tensors, whether the runtime fused/arena'd or not.
        graph = stages("micro_mobilenet_v1", stage)
        feeds = make_feeds(graph, 4)
        frames = {}
        for label, kwargs in (
                ("seed", {"use_plan": False}),
                ("plan", {}),
                ("arena", {"arena": True, "fuse": True, "arena_batch": 4})):
            interp = Interpreter(graph, **kwargs)
            monitor = EdgeMLMonitor(name=label, per_layer=True)
            monitor.attach(interp)
            with monitor.frame(interp):
                interp.invoke(feeds)
            frames[label] = EXrayLog.from_monitor(monitor).frames[0]
        ref = frames["seed"]
        assert list(ref.layer_ops) == [n.name for n in graph.nodes]
        for label in ("plan", "arena"):
            frame = frames[label]
            assert list(frame.layer_ops) == list(ref.layer_ops), label
            assert frame.layer_ops == ref.layer_ops, label
            for key, tensor in ref.tensors.items():
                np.testing.assert_array_equal(
                    tensor, frame.tensors[key], err_msg=f"{label}:{key}")


# --------------------------------------------------------------- fusion

class TestFusion:
    def test_schedule_covers_every_node_once(self, small_cnn):
        plan = compile_plan(small_cnn, OpResolver(), fuse=True)
        names = [b.node.name
                 for unit in plan.schedule for b in unit.bindings]
        assert names == [n.name for n in small_cnn.nodes]
        # small_cnn carries a res_add -> relu tail: at least one real chain.
        assert len(plan.schedule) < len(plan.bindings)
        for unit in plan.schedule:
            assert unit.output == unit.bindings[-1].node.output
            for stage in unit.stages:
                assert stage.node.op in CHAIN_OPS
                assert not stage.alias

    def test_unfused_schedule_is_bare(self, small_cnn):
        plan = compile_plan(small_cnn, OpResolver())
        assert len(plan.schedule) == len(plan.bindings)
        assert all(not unit.stages for unit in plan.schedule)

    def test_profile_still_per_logical_node(self, small_cnn, rng):
        x = rng.normal(size=(2, 8, 8, 3)).astype(np.float32)
        interp = Interpreter(small_cnn, arena=True, fuse=True, arena_batch=2)
        interp.invoke(x)
        assert [p["name"] for p in interp.last_profile] == \
            [n.name for n in small_cnn.nodes]
        assert all(p["output_bytes"] > 0 for p in interp.last_profile)


# ------------------------------------------------------- arena runtime

class TestArenaRuntime:
    def test_outputs_survive_buffer_reuse(self, small_cnn, rng):
        # Arena slots are recycled every invoke; returned outputs must be
        # the caller's own copies, not views into the shared buffer.
        interp = Interpreter(small_cnn, arena=True, arena_batch=1)
        x1 = rng.normal(size=(1, 8, 8, 3)).astype(np.float32)
        x2 = rng.normal(size=(1, 8, 8, 3)).astype(np.float32)
        first = interp.invoke_single(x1)
        snapshot = first.copy()
        assert not np.shares_memory(first, interp._arena_cache.buffer)
        second = interp.invoke_single(x2)
        np.testing.assert_array_equal(first, snapshot)
        assert not np.array_equal(first, second)

    def test_observer_sees_stable_snapshots(self, small_cnn, rng):
        # Arena slots are overwritten by later layers; records retained by
        # an observer must hold each layer's output as it was emitted.
        x = rng.normal(size=(2, 8, 8, 3)).astype(np.float32)
        expected = {}
        ref = Interpreter(small_cnn, use_plan=False)
        ref.add_observer(
            lambda r: expected.__setitem__(r.node.name, r.output.copy()))
        ref.invoke(x)

        records = []
        interp = Interpreter(small_cnn, arena=True, fuse=True, arena_batch=2)
        interp.add_observer(records.append)
        interp.invoke(x)
        assert [r.node.name for r in records] == list(expected)
        for record in records:
            np.testing.assert_array_equal(
                record.output, expected[record.node.name],
                err_msg=record.node.name)

    def test_peak_bytes_is_arena_size(self, small_cnn, rng):
        interp = Interpreter(small_cnn, arena=True, arena_batch=1)
        interp.invoke_single(rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
        assert interp.last_arena_status == "arena"
        assert interp.last_peak_activation_bytes == \
            int(interp.plan.arena.arena_bytes)

    def test_arena_buffer_reused_across_invokes(self, small_cnn, rng):
        interp = Interpreter(small_cnn, arena=True, arena_batch=1)
        x = rng.normal(size=(1, 8, 8, 3)).astype(np.float32)
        interp.invoke_single(x)
        state = interp._arena_cache
        interp.invoke_single(x)
        assert interp._arena_cache is state


# --------------------------------------------------- verifier skepticism

class TestVerifierAliasClaims:
    def _flat_graph(self, rng):
        b = GraphBuilder("flatzoo")
        x = b.input("input", (None, 4, 4, 8))
        h = b.conv2d(x, rng.normal(size=(1, 1, 8, 8)).astype(np.float32),
                     activation="relu", name="pw")
        h = b.add("flatten", h, name="flat")
        h = b.dense(h, rng.normal(size=(128, 10)).astype(np.float32),
                    name="logits")
        b.mark_output(h)
        return b.finish()

    def test_true_alias_verifies(self, rng):
        graph = self._flat_graph(rng)
        layout = pack_arena(graph)
        assert not verify_layout(graph, layout)
        flat = layout.slot("flat")
        assert flat.alias_of == "pw"
        assert flat.offset == layout.slot("pw").offset

    def test_false_alias_claim_rejected(self, rng):
        # A layout asserting that a non-view tensor aliases another must
        # be refused: the verifier re-derives aliasing from the graph and
        # never trusts the document.
        graph = self._flat_graph(rng)
        layout = pack_arena(graph)
        lying = replace(layout, slots=tuple(
            replace(s, alias_of="input",
                    offset=layout.slot("input").offset)
            if s.tensor == "pw" else s
            for s in layout.slots))
        problems = verify_layout(graph, lying)
        assert problems
        assert any("alias" in p.message for p in problems)

    def test_alias_of_alias_rejected(self, rng):
        graph = self._flat_graph(rng)
        layout = pack_arena(graph)
        lying = replace(layout, slots=tuple(
            replace(s, alias_of="flat") if s.tensor == "logits" else s
            for s in layout.slots))
        assert verify_layout(graph, lying)

    def test_runtime_refuses_unverified_layout(self, small_cnn, monkeypatch):
        # attach_arena re-verifies; a corrupted layout never reaches the
        # interpreter.
        import repro.analysis.arena as arena_mod
        from repro.analysis.arena import corrupt_layout_for_test
        from repro.util.errors import GraphError
        real = arena_mod.pack_arena

        def corrupted(graph, plan=None, batch=1):
            return corrupt_layout_for_test(real(graph, plan, batch))

        monkeypatch.setattr(arena_mod, "pack_arena", corrupted)
        with pytest.raises(GraphError):
            compile_plan(small_cnn, OpResolver(), arena=True)


# ------------------------------------------------- repo rule: view returns

class TestExecutorViewAnnotationRule:
    def _check(self, source, filename="executors_fake.py"):
        import importlib.util
        spec = importlib.util.spec_from_file_location(
            "check_repo_rules",
            Path(__file__).resolve().parents[1] / "tools"
            / "check_repo_rules.py")
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod.check_source(filename, source)

    def test_unannotated_reshape_return_flagged(self):
        violations = self._check(
            "def reshape(node, inputs, ctx):\n"
            "    (x,) = inputs\n"
            "    return x.reshape(node.attrs['shape'])\n")
        assert len(violations) == 1
        assert "aliases_input" in violations[0][2]

    def test_annotated_reshape_return_clean(self):
        for decorator in ("@aliases_input",
                          "@annotations.aliases_input"):
            violations = self._check(
                f"{decorator}\n"
                "def flatten(node, inputs, ctx):\n"
                "    (x,) = inputs\n"
                "    return x.reshape((x.shape[0], -1))\n")
            assert violations == [], decorator

    def test_rule_scoped_to_executor_modules(self):
        source = ("def helper(x, shape):\n"
                  "    return x.reshape(shape)\n")
        assert self._check(source, filename="executors_quant.py")
        assert self._check(source, filename="kernels.py") == []

    def test_real_executor_modules_clean(self):
        root = Path(__file__).resolve().parents[1] / "src"
        checked = 0
        for path in sorted(root.rglob("executors*.py")):
            checked += 1
            assert self._check(path.read_text(), str(path)) == []
        assert checked >= 3  # float, quant, batched
