"""Autograd tests: numerical gradient checks, optimizers, training dynamics."""

import numpy as np
import pytest

from repro.autograd import SGD, Adam, Var, mse, ops, softmax_cross_entropy


def numerical_grad(f, var, eps=1e-3):
    """Central-difference gradient of scalar-valued f wrt var.data."""
    grad = np.zeros_like(var.data, dtype=np.float64)
    it = np.nditer(var.data, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        orig = var.data[idx]
        var.data[idx] = orig + eps
        fp = f()
        var.data[idx] = orig - eps
        fm = f()
        var.data[idx] = orig
        grad[idx] = (fp - fm) / (2 * eps)
    return grad


def check_grads(build_output, variables, rtol=5e-2, seed=0):
    """Backprop a random cotangent and compare against numeric gradients."""
    rng = np.random.default_rng(seed)
    out = build_output()
    cotangent = rng.normal(size=out.shape).astype(np.float32)
    out.backward(cotangent)
    for var in variables:
        num = numerical_grad(lambda: float((build_output().data * cotangent).sum()),
                             var)
        scale = max(np.abs(num).max(), 1e-3)
        assert var.grad is not None, "no gradient flowed"
        np.testing.assert_allclose(var.grad, num, rtol=0, atol=rtol * scale)


class TestBasicOps:
    def test_add_broadcast_grads(self, rng):
        a = Var(rng.normal(size=(3, 4)).astype(np.float32), requires_grad=True)
        b = Var(rng.normal(size=(4,)).astype(np.float32), requires_grad=True)
        check_grads(lambda: ops.add(a, b), [a, b])

    def test_mul_grads(self, rng):
        a = Var(rng.normal(size=(3, 4)).astype(np.float32), requires_grad=True)
        b = Var(rng.normal(size=(3, 4)).astype(np.float32), requires_grad=True)
        check_grads(lambda: ops.mul(a, b), [a, b])

    def test_matmul_grads(self, rng):
        a = Var(rng.normal(size=(3, 5)).astype(np.float32), requires_grad=True)
        b = Var(rng.normal(size=(5, 2)).astype(np.float32), requires_grad=True)
        check_grads(lambda: ops.matmul(a, b), [a, b])

    def test_batched_matmul_grads(self, rng):
        a = Var(rng.normal(size=(2, 3, 4)).astype(np.float32), requires_grad=True)
        b = Var(rng.normal(size=(4, 3)).astype(np.float32), requires_grad=True)
        check_grads(lambda: ops.matmul(a, b), [a, b])

    @pytest.mark.parametrize("fn", ["relu", "relu6", "hard_sigmoid",
                                    "hard_swish", "sigmoid", "tanh", "gelu"])
    def test_activation_grads(self, rng, fn):
        x = Var((rng.normal(size=(4, 5)) * 2).astype(np.float32),
                requires_grad=True)
        # Nudge values away from activation kinks where the numeric gradient
        # is ill-defined.
        x.data += 0.05 * np.sign(x.data)
        check_grads(lambda: ops.ACTIVATION_FNS[fn](x), [x])

    def test_softmax_grads(self, rng):
        x = Var(rng.normal(size=(3, 6)).astype(np.float32), requires_grad=True)
        check_grads(lambda: ops.softmax(x), [x])

    def test_reshape_concat_slice_grads(self, rng):
        a = Var(rng.normal(size=(2, 4)).astype(np.float32), requires_grad=True)
        b = Var(rng.normal(size=(2, 3)).astype(np.float32), requires_grad=True)

        def build():
            cat = ops.concat([a, b], axis=-1)
            return ops.slice_channels(ops.reshape(cat, (2, 7)), 2, 6)

        check_grads(build, [a, b])

    def test_embedding_grads_accumulate_repeats(self, rng):
        table = Var(rng.normal(size=(5, 3)).astype(np.float32),
                    requires_grad=True)
        ids = np.array([[0, 0, 2]])
        out = ops.embedding(table, ids)
        out.backward(np.ones_like(out.data))
        np.testing.assert_allclose(table.grad[0], 2.0)  # row 0 used twice
        np.testing.assert_allclose(table.grad[1], 0.0)


class TestStructuredOps:
    def test_conv2d_grads(self, rng):
        x = Var(rng.normal(size=(2, 5, 5, 2)).astype(np.float32),
                requires_grad=True)
        w = Var(rng.normal(size=(3, 3, 2, 3)).astype(np.float32) * 0.5,
                requires_grad=True)
        b = Var(rng.normal(size=3).astype(np.float32), requires_grad=True)
        check_grads(lambda: ops.conv2d(x, w, b, stride=2, padding="same"),
                    [x, w, b])

    def test_depthwise_grads(self, rng):
        x = Var(rng.normal(size=(2, 5, 5, 3)).astype(np.float32),
                requires_grad=True)
        w = Var(rng.normal(size=(3, 3, 3, 1)).astype(np.float32) * 0.5,
                requires_grad=True)
        check_grads(lambda: ops.depthwise_conv2d(x, w), [x, w])

    def test_avg_pool_grads(self, rng):
        x = Var(rng.normal(size=(1, 6, 6, 2)).astype(np.float32),
                requires_grad=True)
        check_grads(lambda: ops.avg_pool2d(x, 2, padding="same"), [x])

    def test_global_avg_pool_grads(self, rng):
        x = Var(rng.normal(size=(2, 4, 4, 3)).astype(np.float32),
                requires_grad=True)
        check_grads(lambda: ops.global_avg_pool(x), [x])

    def test_batch_norm_grads(self, rng):
        x = Var(rng.normal(size=(8, 4)).astype(np.float32), requires_grad=True)
        g = Var(rng.normal(1, 0.2, 4).astype(np.float32), requires_grad=True)
        bt = Var(rng.normal(0, 0.2, 4).astype(np.float32), requires_grad=True)

        def build():
            running = {"mean": np.zeros(4, np.float32),
                       "variance": np.ones(4, np.float32)}
            return ops.batch_norm_train(x, g, bt, running)

        check_grads(build, [x, g, bt])

    def test_batch_norm_updates_running_stats(self, rng):
        x = Var(rng.normal(3, 2, size=(64, 4)).astype(np.float32))
        running = {"mean": np.zeros(4, np.float32),
                   "variance": np.ones(4, np.float32)}
        ops.batch_norm_train(x, Var(np.ones(4, np.float32)),
                             Var(np.zeros(4, np.float32)), running,
                             momentum=0.0)
        np.testing.assert_allclose(running["mean"], x.data.mean(0), rtol=1e-4)

    def test_layer_norm_grads(self, rng):
        x = Var(rng.normal(size=(4, 6)).astype(np.float32), requires_grad=True)
        g = Var(rng.normal(1, 0.2, 6).astype(np.float32), requires_grad=True)
        bt = Var(rng.normal(0, 0.2, 6).astype(np.float32), requires_grad=True)
        check_grads(lambda: ops.layer_norm(x, g, bt), [x, g, bt])


class TestLosses:
    def test_cross_entropy_grad(self, rng):
        logits = Var(rng.normal(size=(6, 5)).astype(np.float32),
                     requires_grad=True)
        labels = rng.integers(0, 5, 6)
        loss = softmax_cross_entropy(logits, labels)
        loss.backward()
        num = numerical_grad(
            lambda: float(softmax_cross_entropy(Var(logits.data), labels).data),
            logits)
        np.testing.assert_allclose(logits.grad, num, atol=1e-3)

    def test_cross_entropy_perfect_prediction_low_loss(self):
        logits = Var(np.array([[100.0, 0.0], [0.0, 100.0]], np.float32))
        loss = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_mse_masked(self, rng):
        pred = Var(rng.normal(size=(2, 3)).astype(np.float32),
                   requires_grad=True)
        target = np.zeros((2, 3), np.float32)
        mask = np.zeros((2, 3), np.float32)
        mask[0, 0] = 1.0
        loss = mse(pred, target, mask)
        loss.backward()
        assert np.count_nonzero(pred.grad) == 1


class TestBackwardMechanics:
    def test_diamond_graph_accumulates(self, rng):
        x = Var(np.array([2.0], np.float32), requires_grad=True)
        y = ops.add(ops.mul(x, x), x)  # x^2 + x -> grad 2x + 1 = 5
        y.backward(np.ones(1, np.float32))
        np.testing.assert_allclose(x.grad, [5.0])

    def test_deep_chain_no_recursion_error(self):
        x = Var(np.ones(1, np.float32), requires_grad=True)
        y = x
        for _ in range(3000):
            y = ops.add(y, Var(np.zeros(1, np.float32)))
        y.backward(np.ones(1, np.float32))
        np.testing.assert_allclose(x.grad, [1.0])

    def test_backward_requires_scalar_or_grad(self, rng):
        x = Var(rng.normal(size=(2, 2)).astype(np.float32), requires_grad=True)
        with pytest.raises(ValueError):
            ops.mul(x, x).backward()

    def test_no_grad_for_constants(self, rng):
        a = Var(rng.normal(size=(2,)).astype(np.float32), requires_grad=True)
        c = Var(rng.normal(size=(2,)).astype(np.float32))
        out = ops.mul(a, c)
        out.backward(np.ones(2, np.float32))
        assert c.grad is None and a.grad is not None


class TestOptimizers:
    def quadratic_problem(self):
        target = np.array([3.0, -2.0], np.float32)
        w = Var(np.zeros(2, np.float32), requires_grad=True)
        return w, target

    def test_sgd_converges(self):
        w, target = self.quadratic_problem()
        opt = SGD({"w": w}, lr=0.1, momentum=0.5)
        for _ in range(100):
            loss = mse(w, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-2)

    def test_adam_converges(self):
        w, target = self.quadratic_problem()
        opt = Adam({"w": w}, lr=0.1)
        for _ in range(200):
            loss = mse(w, target)
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-2)

    def test_weight_decay_shrinks(self):
        w = Var(np.full(2, 10.0, np.float32), requires_grad=True)
        opt = SGD({"w": w}, lr=0.1, momentum=0.0, weight_decay=1.0)
        loss = mse(w, w.data.copy())  # zero data gradient
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert np.all(np.abs(w.data) < 10.0)

    def test_skips_params_without_grads(self):
        w = Var(np.ones(2, np.float32), requires_grad=True)
        opt = Adam({"w": w})
        opt.step()  # no grad: must not crash or move
        np.testing.assert_allclose(w.data, 1.0)
