"""Backend fan-out tests: --backends axis, pool registration, triage label.

Covers the sweep-facing half of the multi-backend subsystem:

* ``expand_backends`` / ``parse_backends`` lineup construction;
* runtime resolver registrations crossing into process-pool workers via
  the pool initializer (the registry used to be invisible to spawned
  workers), including the thread fallback for unpicklable factories;
* the triage engine's backend-divergence rule: same preprocessing + same
  bug preset but different backend ⇒ kernel-implementation hypothesis.
"""

import multiprocessing

import pytest

from repro.runtime.resolver import RESOLVERS, OpResolver, register_resolver
from repro.util.errors import ValidationError
from repro.validate.execution import make_pool
from repro.validate.sweep import (
    SweepVariant,
    expand_backends,
    parse_backends,
    run_sweep,
)
from repro.validate.triage import CAUSE_BACKEND, CAUSE_HEALTHY, triage_sweep

MODEL = "micro_mobilenet_v1"


def _resolver_registered(name: str) -> bool:
    """Top-level pool probe: is ``name`` visible in this process' registry?"""
    return name in RESOLVERS


class TestParseBackends:
    def test_comma_separated(self):
        assert parse_backends("optimized,reference,batched") == \
            ["optimized", "reference", "batched"]

    def test_all_selects_registry(self):
        assert parse_backends("all") == sorted(RESOLVERS)

    def test_auto_allowed(self):
        assert parse_backends("auto,optimized") == ["auto", "optimized"]

    def test_unknown_rejected(self):
        with pytest.raises(ValidationError):
            parse_backends("optimized,warp")

    def test_duplicates_rejected(self):
        with pytest.raises(ValidationError):
            parse_backends("batched,batched")

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            parse_backends("")


class TestExpandBackends:
    def test_names_and_fields(self):
        lineup = [SweepVariant("clean"),
                  SweepVariant("bgr", {"channel_order": "bgr"},
                               stage="quantized", device="pixel3_cpu")]
        expanded = expand_backends(lineup, ["optimized", "batched"])
        assert [v.name for v in expanded] == [
            "clean@optimized", "clean@batched",
            "bgr@optimized", "bgr@batched"]
        bgr = expanded[3]
        assert bgr.resolver == "batched"
        assert bgr.overrides == {"channel_order": "bgr"}
        assert bgr.stage == "quantized" and bgr.device == "pixel3_cpu"

    def test_expanded_lineup_validates(self):
        for v in expand_backends([SweepVariant("clean")], "all"):
            v.check()

    def test_auto_resolver_variant_checks(self):
        SweepVariant("v", resolver="auto").check()


class TestPoolRegistration:
    """Runtime registrations must reach process-pool workers (bugfix)."""

    def test_registration_ships_to_spawned_workers(self):
        # spawn re-imports the registry module in the worker, so without
        # the pool initializer the runtime registration is invisible there.
        register_resolver("custom_opt", OpResolver)
        try:
            pool, _ = make_pool(
                "process", 1, 1,
                mp_context=multiprocessing.get_context("spawn"))
            try:
                assert pool.submit(_resolver_registered, "custom_opt").result(
                    timeout=60)
            finally:
                pool.shutdown()
        finally:
            del RESOLVERS["custom_opt"]

    def test_unpicklable_registration_falls_back_to_threads(self):
        from concurrent.futures import ThreadPoolExecutor
        register_resolver("custom_lambda", lambda bugs: OpResolver(bugs=bugs))
        try:
            with pytest.warns(RuntimeWarning, match="custom_lambda"):
                pool, workers = make_pool("process", 2, 2)
            try:
                assert isinstance(pool, ThreadPoolExecutor)
                assert workers == 2
            finally:
                pool.shutdown()
        finally:
            del RESOLVERS["custom_lambda"]

    def test_custom_resolver_sweeps_under_process_executor(self):
        register_resolver("custom_opt", OpResolver)
        try:
            report = run_sweep(
                MODEL, [SweepVariant("c", resolver="custom_opt")],
                frames=8, executor="process", workers=1)
            assert report.healthy
        finally:
            del RESOLVERS["custom_opt"]


class TestBackendAxis:
    def test_run_sweep_fans_across_backends(self):
        report = run_sweep(
            MODEL, [SweepVariant("clean")], frames=8, executor="serial",
            backends="optimized,reference,batched")
        assert [r.variant.name for r in report.results] == [
            "clean@optimized", "clean@reference", "clean@batched"]
        assert report.healthy
        # Reference kernels are charged their Table-4 on-device slowdown;
        # batched is charged as optimized.
        by_name = {r.variant.name: r for r in report.results}
        assert by_name["clean@reference"].mean_latency_ms > \
            10 * by_name["clean@optimized"].mean_latency_ms
        assert by_name["clean@batched"].mean_latency_ms == \
            by_name["clean@optimized"].mean_latency_ms

    def test_auto_backend_variant_runs(self):
        report = run_sweep(
            MODEL, [SweepVariant("a", resolver="auto")], frames=8,
            executor="serial")
        assert report.healthy

    def test_triage_labels_backend_divergence(self):
        # The dwconv accumulator-overflow preset exists only in the
        # optimized kernels: fanned across backends, the same variant
        # passes on reference and fails on optimized/batched — the
        # kernel-implementation signature.
        report = run_sweep(
            "micro_mobilenet_v2",
            [SweepVariant("dw", stage="quantized",
                          kernel_bugs="paper-optimized")],
            frames=10, executor="thread",
            backends=["optimized", "reference", "batched"])
        triage = triage_sweep(report)
        assert triage.cluster_of("dw@reference").cause == CAUSE_HEALTHY
        broken = triage.cluster_of("dw@optimized")
        assert broken is triage.cluster_of("dw@batched")
        assert broken.cause == CAUSE_BACKEND
        assert "depthwise_conv2d" in broken.label
        assert "fail on optimized" in broken.detail
        assert "kernel-backend" in triage.render()
