"""Batched-backend tests: kernels, resolver fallback, backend descriptors.

The batched backend's contract has three parts, all pinned here:

* **kernel parity** — the vectorized-batch kernels agree with the builtin
  float kernels (bit-for-bit where the math is shared: 1x1 and im2col
  convolutions, dense, add/mul, max pool; to float tolerance where the
  accumulation order differs: depthwise conv, average pool);
* **per-op fallback** — a graph containing ops the batched backend lacks
  executes through the builtin optimized executors and stays
  *byte-identical* to :class:`OpResolver`;
* **backend descriptors** — the registry carries device affinity,
  capabilities, and priority, and ``make_resolver("auto", device=...)``
  selects accordingly.
"""

import numpy as np
import pytest

from repro.graph import GraphBuilder
from repro.kernels import avg_pool2d, conv2d, depthwise_conv2d, max_pool2d
from repro.kernels.batched import (
    BATCHED_EXECUTORS,
    BATCHED_QUANT_EXECUTORS,
    batched_avg_pool2d,
    batched_conv2d,
    batched_depthwise_conv2d,
    batched_max_pool2d,
)
from repro.perfmodel import DEVICES, PIXEL4_CPU
from repro.runtime import (
    RESOLVERS,
    BackendDescriptor,
    BatchedOpResolver,
    Interpreter,
    OpResolver,
    make_resolver,
    register_resolver,
    select_backend,
)
from repro.runtime.executors_float import FLOAT_EXECUTORS
from repro.util.errors import KernelError, ValidationError


class TestBatchedKernels:
    @pytest.mark.parametrize("k,stride,padding", [
        (1, 1, "same"), (1, 2, "same"), (3, 1, "same"),
        (3, 2, "same"), (3, 1, "valid"), (5, 2, "valid"),
    ])
    def test_conv_byte_identical(self, rng, k, stride, padding):
        x = rng.normal(size=(6, 9, 9, 4)).astype(np.float32)
        w = rng.normal(size=(k, k, 4, 6)).astype(np.float32)
        b = rng.normal(size=(6,)).astype(np.float32)
        np.testing.assert_array_equal(
            conv2d(x, w, b, stride=stride, padding=padding),
            batched_conv2d(x, w, b, stride=stride, padding=padding))

    @pytest.mark.parametrize("k,stride,padding,mult", [
        (3, 1, "same", 1), (3, 2, "same", 1), (3, 1, "valid", 2),
        (5, 1, "same", 3),
    ])
    def test_depthwise_close(self, rng, k, stride, padding, mult):
        x = rng.normal(size=(6, 9, 9, 4)).astype(np.float32)
        w = rng.normal(size=(k, k, 4, mult)).astype(np.float32)
        b = rng.normal(size=(4 * mult,)).astype(np.float32)
        np.testing.assert_allclose(
            depthwise_conv2d(x, w, b, stride=stride, padding=padding),
            batched_depthwise_conv2d(x, w, b, stride=stride, padding=padding),
            rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("pool,stride,padding", [
        (2, None, "valid"), (3, 2, "same"), (2, 1, "valid"),
    ])
    def test_pools(self, rng, pool, stride, padding):
        x = rng.normal(size=(5, 9, 9, 3)).astype(np.float32)
        np.testing.assert_array_equal(
            max_pool2d(x, pool, stride, padding),
            batched_max_pool2d(x, pool, stride, padding))
        np.testing.assert_allclose(
            avg_pool2d(x, pool, stride, padding),
            batched_avg_pool2d(x, pool, stride, padding),
            rtol=1e-6, atol=1e-6)

    def test_conv_shape_errors(self, rng):
        x = rng.normal(size=(2, 5, 5, 3)).astype(np.float32)
        with pytest.raises(KernelError):
            batched_conv2d(x, rng.normal(size=(1, 1, 4, 6)).astype(np.float32))
        with pytest.raises(KernelError):
            batched_depthwise_conv2d(
                x, rng.normal(size=(3, 3, 4, 1)).astype(np.float32))


class TestBatchedResolver:
    def test_hot_ops_rebind_rest_falls_back(self):
        resolver = BatchedOpResolver()
        for op, fn in BATCHED_EXECUTORS.items():
            assert resolver.lookup(op, False) is fn
        # Ops without a batched kernel resolve to the builtin executors.
        for op in ("softmax", "flatten", "batch_norm", "self_attention"):
            assert resolver.lookup(op, False) is FLOAT_EXECUTORS[op]
        # Quantized hot ops rebind to the centered-GEMM batched executors...
        for op, fn in BATCHED_QUANT_EXECUTORS.items():
            assert resolver.lookup(op, True) is fn
        # ...while the rest of the quantized domain falls back to optimized.
        for op in ("add", "mul", "softmax", "avg_pool2d"):
            assert resolver.lookup(op, True) is OpResolver().lookup(op, True)
        assert resolver.version == 0  # construction-time bindings, not register()

    def test_float_graph_outputs_close(self, small_cnn_mobile, rng):
        x = rng.normal(size=(8, 8, 8, 3)).astype(np.float32)
        a = Interpreter(small_cnn_mobile, OpResolver()).invoke_single(x)
        b = Interpreter(small_cnn_mobile, BatchedOpResolver()).invoke_single(x)
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-6)
        assert a.argmax(axis=1).tolist() == b.argmax(axis=1).tolist()

    def test_quantized_graph_byte_identical(self, small_cnn_quantized, rng):
        # int8 execution falls back entirely to the optimized kernels.
        x = rng.normal(size=(4, 8, 8, 3)).astype(np.float32)
        a = Interpreter(small_cnn_quantized, OpResolver()).invoke_single(x)
        b = Interpreter(small_cnn_quantized, BatchedOpResolver()).invoke_single(x)
        np.testing.assert_array_equal(a, b)

    def test_fallback_graph_byte_identical(self, rng):
        # A graph containing ops the batched backend lacks (flatten,
        # softmax) next to ops it covers (1x1 conv, max pool, dense) must
        # execute via the per-op fallback and match OpResolver byte for
        # byte.
        b = GraphBuilder("fallback")
        x = b.input("input", (None, 8, 8, 3))
        h = b.conv2d(x, rng.normal(size=(1, 1, 3, 8)).astype(np.float32),
                     rng.normal(size=(8,)).astype(np.float32),
                     activation="relu6", name="pw")
        h = b.add("max_pool2d", h, attrs={"pool_size": 2}, name="pool")
        h = b.add("flatten", h, name="flat")
        h = b.dense(h, rng.normal(size=(128, 5)).astype(np.float32),
                    rng.normal(size=(5,)).astype(np.float32),
                    activation="relu", name="logits")
        h = b.softmax(h, name="probs")
        b.mark_output(h)
        graph = b.finish()

        assert "flatten" not in BatchedOpResolver.batched_ops
        feed = rng.normal(size=(6, 8, 8, 3)).astype(np.float32)
        a = Interpreter(graph, OpResolver()).invoke_single(feed)
        c = Interpreter(graph, BatchedOpResolver()).invoke_single(feed)
        np.testing.assert_array_equal(a, c)

    def test_batched_charged_as_optimized(self, small_cnn_mobile, rng):
        # The cost model prices batched kernels with the optimized
        # coefficients: simulated latency is backend-independent, so sweep
        # comparisons across the two backends isolate numerical effects.
        x = rng.normal(size=(2, 8, 8, 3)).astype(np.float32)
        opt = Interpreter(small_cnn_mobile, OpResolver(), PIXEL4_CPU)
        opt.invoke_single(x)
        bat = Interpreter(small_cnn_mobile, BatchedOpResolver(), PIXEL4_CPU)
        bat.invoke_single(x)
        assert bat.last_latency_ms == opt.last_latency_ms


class TestBackendDescriptors:
    def test_builtin_registry_entries(self):
        for name in ("optimized", "reference", "batched"):
            desc = RESOLVERS[name]
            assert isinstance(desc, BackendDescriptor)
            assert desc.name == name
            resolver = desc()
            assert resolver.kind == desc.kind

    def test_auto_selects_batched_on_cpu(self):
        assert select_backend(DEVICES["pixel4_cpu"]).name == "batched"
        assert select_backend(DEVICES["x86_emulator"]).name == "batched"
        resolver = make_resolver("auto", device=DEVICES["pixel4_cpu"])
        assert isinstance(resolver, BatchedOpResolver)

    def test_auto_respects_device_affinity(self):
        # The batched backend declares cpu/emulator affinity only; GPUs
        # fall back to the next-priority backend.
        assert select_backend(DEVICES["pixel4_gpu"]).name == "optimized"

    def test_capability_filter(self):
        assert select_backend(require={"debug"}).name == "reference"
        with pytest.raises(ValidationError):
            select_backend(require={"quantum"})

    def test_custom_descriptor_priority_wins(self):
        register_resolver(
            "turbo", OpResolver, kind="optimized",
            device_kinds=("cpu",), capabilities=("float", "int8"),
            priority=99)
        try:
            assert select_backend(DEVICES["pixel4_cpu"]).name == "turbo"
            assert select_backend(DEVICES["pixel4_gpu"]).name == "optimized"
        finally:
            del RESOLVERS["turbo"]

    def test_register_descriptor_rekeyed(self):
        donor = RESOLVERS["batched"]
        desc = register_resolver("batched2", donor)
        try:
            assert desc.name == "batched2"
            assert desc.factory is donor.factory
            assert desc.priority == donor.priority
        finally:
            del RESOLVERS["batched2"]

    def test_unknown_kind_lists_auto(self):
        with pytest.raises(ValidationError, match="auto"):
            make_resolver("turbo9000")
