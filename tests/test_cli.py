"""CLI tests: every subcommand end to end through ``repro.cli.main``."""

import io

import pytest

from repro.cli import main


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestListModels:
    def test_lists_all_models(self):
        code, text = run_cli("list-models")
        assert code == 0
        assert "micro_mobilenet_v2" in text and "nnlm_lite" in text
        assert "Mobilenet v2" in text  # paper family column


class TestExport:
    def test_exports_loadable_model(self, tmp_path):
        path = tmp_path / "v1.rpm"
        code, text = run_cli("export", "micro_mobilenet_v1",
                             "--stage", "quantized", "-o", str(path))
        assert code == 0 and path.exists()
        from repro.graph import load_model
        graph = load_model(path)
        assert graph.is_quantized


class TestTrain:
    def test_reports_cached_accuracy(self):
        code, text = run_cli("train", "micro_mobilenet_v1")
        assert code == 0 and "val_accuracy=" in text


class TestValidate:
    def test_clean_pipeline_exits_zero(self):
        code, text = run_cli("validate", "micro_mobilenet_v1", "--frames", "12")
        assert code == 0
        assert "verdict: HEALTHY" in text

    def test_injected_channel_bug_diagnosed_nonzero_exit(self):
        code, text = run_cli("validate", "micro_mobilenet_v1",
                             "--frames", "16", "--bug", "channel_order=bgr")
        assert code == 1
        assert "BGR->RGB" in text

    def test_rotation_bug_integer_value_parsed(self):
        code, text = run_cli("validate", "micro_mobilenet_v1",
                             "--frames", "16", "--bug", "rotation_k=1")
        assert code == 1
        assert "rotated" in text

    def test_kernel_bug_preset(self):
        code, text = run_cli("validate", "micro_mobilenet_v2",
                             "--stage", "quantized", "--frames", "16",
                             "--kernel-bugs", "paper-optimized")
        assert code == 1
        assert "depthwise_conv2d" in text

    def test_bad_bug_syntax_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("validate", "micro_mobilenet_v1", "--bug", "nonsense")

    def test_unknown_bug_key_exits_cleanly(self, capsys):
        # Regression: a typo'd key used to be silently ignored — the CLI ran
        # the *correct* pipeline and reported HEALTHY.
        code, _ = run_cli("validate", "micro_mobilenet_v1",
                          "--frames", "4", "--bug", "chanel_order=bgr")
        assert code == 2
        assert "chanel_order" in capsys.readouterr().err


class TestSweep:
    def test_default_lineup_flags_bugs(self):
        code, text = run_cli("sweep", "micro_mobilenet_v1", "--frames", "16")
        assert code == 1                      # bug-injected variants unhealthy
        assert "clean" in text and "rot90" in text
        assert "sweep verdict" in text

    def test_explicit_variants_serial_healthy(self):
        code, text = run_cli(
            "sweep", "micro_mobilenet_v1", "--frames", "12",
            "--executor", "serial", "--variant", "clean",
            "--variant", "also_clean:resolver=reference")
        assert code == 0
        assert "HEALTHY" in text and "also_clean" in text

    def test_parallel_matches_serial_output(self):
        argv = ("sweep", "micro_mobilenet_v1", "--frames", "12",
                "--variant", "clean", "--variant", "bgr:channel_order=bgr",
                "--variant", "rot:rotation_k=1",
                "--variant", "norm:normalization=[0,1]")
        code_s, serial = run_cli(*argv, "--executor", "serial")
        code_p, parallel = run_cli(*argv, "--executor", "process")
        assert (code_s, serial) == (code_p, parallel)

    def test_bad_variant_spec_rejected(self, capsys):
        code, _ = run_cli("sweep", "micro_mobilenet_v1", "--variant", "v:oops")
        assert code == 2
        assert "v:oops" in capsys.readouterr().err

    def test_unknown_override_key_preflighted_to_skip(self):
        # The pre-flight lint catches the typo'd key statically: the variant
        # lands in the report as SKIPPED with its diagnostic instead of
        # aborting the whole sweep (or burning a worker on a doomed run).
        code, text = run_cli("sweep", "micro_mobilenet_v1", "--frames", "4",
                             "--executor", "process",
                             "--variant", "clean",
                             "--variant", "typo:chanel_order=bgr")
        assert code == 1
        assert "SKIPPED" in text
        assert "S004" in text and "chanel_order" in text
        assert "did you mean 'channel_order'" in text

    def test_no_preflight_restores_raise_on_bad_key(self, capsys):
        code, _ = run_cli("sweep", "micro_mobilenet_v1", "--frames", "4",
                          "--executor", "process", "--no-preflight",
                          "--variant", "typo:chanel_order=bgr")
        assert code == 2
        assert "chanel_order" in capsys.readouterr().err

    def test_text_task_requires_explicit_variants(self, capsys):
        code, _ = run_cli("sweep", "nnlm_lite")
        assert code == 2
        assert "no default variants" in capsys.readouterr().err

    def test_stream_prints_progress_then_report(self):
        code, text = run_cli("sweep", "micro_mobilenet_v1", "--frames", "12",
                             "--executor", "serial", "--stream")
        assert code == 1
        lines = text.splitlines()
        assert lines[0].startswith("[1/4] ")  # verdicts stream first
        assert "[4/4]" in text and "sweep verdict" in text
        # The aggregate table still presents the lineup order.
        assert text.index("sweep verdict") > text.index("[4/4]")

    def test_max_failures_marks_skipped(self):
        code, text = run_cli("sweep", "micro_mobilenet_v1", "--frames", "12",
                             "--executor", "serial", "--max-failures", "1")
        assert code == 1
        assert "SKIPPED" in text and "skipped" in text

    def test_triage_appends_cluster_table(self):
        code, text = run_cli("sweep", "micro_mobilenet_v1", "--frames", "12",
                             "--executor", "serial", "--triage")
        assert code == 1
        assert "root-cause triage" in text
        assert "preprocessing" in text and "healthy" in text

    def test_bad_max_failures_exits_cleanly(self, capsys):
        code, _ = run_cli("sweep", "micro_mobilenet_v1", "--frames", "4",
                          "--executor", "serial", "--max-failures", "0")
        assert code == 2
        assert "max_failures" in capsys.readouterr().err


class TestShardedSweep:
    ARGS = ("--frames", "6", "--variant", "clean",
            "--variant", "rot:rotation_k=1")

    def test_shards_match_single_process_sweep(self, tmp_path):
        code_s, single = run_cli("sweep", "micro_mobilenet_v1", *self.ARGS,
                                 "--executor", "serial", "--triage")
        code_f, fleet = run_cli(
            "sweep", "micro_mobilenet_v1", *self.ARGS, "--executor", "serial",
            "--triage", "--shards", "2", "--out-dir", str(tmp_path))
        assert code_s == code_f == 1
        # Identical report body; fleet mode adds the plan table up front
        # and the artifact hint at the end.
        assert single.rstrip("\n") in fleet
        assert "sharded sweep plan: 2 shard(s)" in fleet

    def test_plan_only_then_worker_then_merge(self, tmp_path):
        code, text = run_cli(
            "sweep", "micro_mobilenet_v1", *self.ARGS,
            "--shards", "2", "--out-dir", str(tmp_path), "--plan-only")
        assert code == 0
        assert "sweep-worker run" in text
        assert (tmp_path / "reference" / "meta.json").exists()
        for shard in ("shard-000", "shard-001"):
            code, _ = run_cli(
                "sweep-worker", "run",
                str(tmp_path / shard / "manifest.json"),
                "--out", str(tmp_path / shard), "--executor", "serial")
            assert (tmp_path / shard / "report.json").exists()
        merged_json = tmp_path / "merged.json"
        code, text = run_cli(
            "sweep", "merge", str(tmp_path / "shard-000"),
            str(tmp_path / "shard-001"), "--report-json", str(merged_json))
        assert code == 1  # rot is unhealthy fleet-wide
        assert "1 of 2 variant(s) unhealthy" in text
        import json
        doc = json.loads(merged_json.read_text())
        assert [r["variant"]["name"] for r in doc["results"]] == \
            ["clean", "rot"]

    def test_merge_of_incomplete_fleet_mentions_skips(self, tmp_path):
        run_cli("sweep", "micro_mobilenet_v1", *self.ARGS,
                "--shards", "2", "--out-dir", str(tmp_path), "--plan-only")
        run_cli("sweep-worker", "run",
                str(tmp_path / "shard-000" / "manifest.json"),
                "--out", str(tmp_path / "shard-000"), "--executor", "serial")
        code, text = run_cli("sweep", "merge", str(tmp_path / "shard-000"),
                             str(tmp_path / "shard-001"))
        assert code == 1
        assert "SKIPPED" in text and "merge note:" in text

    def test_positional_dirs_without_merge_rejected(self, tmp_path, capsys):
        code, _ = run_cli("sweep", "micro_mobilenet_v1", str(tmp_path))
        assert code == 2
        assert "merge" in capsys.readouterr().err

    def test_plan_only_without_shards_rejected(self, capsys):
        code, _ = run_cli("sweep", "micro_mobilenet_v1", "--plan-only")
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_log_dir_with_shards_rejected(self, tmp_path, capsys):
        code, _ = run_cli("sweep", "micro_mobilenet_v1", "--shards", "2",
                          "--log-dir", str(tmp_path / "logs"))
        assert code == 2
        assert "--log-dir" in capsys.readouterr().err

    def test_merge_rejects_sweep_execution_flags(self, tmp_path, capsys):
        code, _ = run_cli("sweep", "merge", str(tmp_path), "--stream",
                          "--variant", "clean")
        assert code == 2
        err = capsys.readouterr().err
        assert "--stream" in err and "--variant" in err

    def test_strict_without_merge_context_rejected(self, capsys):
        code, _ = run_cli("sweep", "micro_mobilenet_v1", "--strict")
        assert code == 2
        assert "--strict" in capsys.readouterr().err

    def test_report_json_with_plan_only_rejected(self, tmp_path, capsys):
        code, _ = run_cli("sweep", "micro_mobilenet_v1", "--shards", "2",
                          "--out-dir", str(tmp_path), "--plan-only",
                          "--report-json", str(tmp_path / "r.json"))
        assert code == 2
        assert "--report-json" in capsys.readouterr().err

    def test_nonpositive_shards_rejected_before_any_work(self, tmp_path,
                                                         capsys):
        out_dir = tmp_path / "fleet"
        code, _ = run_cli("sweep", "micro_mobilenet_v1", "--shards", "0",
                          "--out-dir", str(out_dir))
        assert code == 2
        assert "--shards" in capsys.readouterr().err
        assert not out_dir.exists()  # failed before dirtying out-dir


class TestLintAndAnalyze:
    def test_lint_explain_prints_rule_doc(self):
        code, text = run_cli("lint", "--explain", "D001")
        assert code == 0
        assert text.startswith("D001:")
        assert "severity: error" in text and "category: dataflow" in text

    def test_explain_unknown_rule_suggests(self, capsys):
        code, _ = run_cli("analyze", "--explain", "A01")
        assert code == 2
        assert "did you mean 'A001'" in capsys.readouterr().err

    def test_lint_without_model_or_explain_rejected(self, capsys):
        code, _ = run_cli("lint")
        assert code == 2
        assert "repro lint" in capsys.readouterr().err

    def test_analyze_text_report(self):
        code, text = run_cli("analyze", "micro_mobilenet_v1", "--arena")
        assert code == 0
        assert "value ranges & liveness: micro_mobilenet_v1:mobile" in text
        assert "live ranges (step -1.." in text
        assert "packed arena" in text and "[VERIFIED]" in text

    def test_analyze_json_report(self):
        import json
        code, text = run_cli("analyze", "micro_mobilenet_v1",
                             "--stage", "quantized", "--arena",
                             "--format", "json")
        assert code == 0
        doc = json.loads(text)
        assert doc["target"] == "micro_mobilenet_v1:quantized"
        assert doc["arena_verified"] is True
        assert doc["arena"]["arena_bytes"] < doc["naive_bytes"]
        assert doc["contradictions"] == []

    def test_analyze_exported_model_file(self, tmp_path):
        path = tmp_path / "v1.rpm"
        run_cli("export", "micro_mobilenet_v1", "-o", str(path))
        code, text = run_cli("analyze", str(path))
        assert code == 0
        assert str(path) in text

    def test_analyze_batch_scales_memory(self):
        import json
        _, one = run_cli("analyze", "micro_mobilenet_v1", "--format", "json")
        _, four = run_cli("analyze", "micro_mobilenet_v1", "--batch", "4",
                          "--format", "json")
        assert json.loads(four)["naive_bytes"] == \
            4 * json.loads(one)["naive_bytes"]

    def test_analyze_unbuildable_stage_exits_two(self, capsys):
        code, _ = run_cli("analyze", "nnlm_lite", "--stage", "quantized")
        assert code == 2
        assert "quantiz" in capsys.readouterr().err.lower()


class TestProfile:
    def test_prints_profile_and_total(self):
        code, text = run_cli("profile", "micro_mobilenet_v2",
                             "--frames", "2", "--device", "pixel4_cpu")
        assert code == 0
        assert "end-to-end:" in text and "ms/frame" in text

    def test_reference_resolver_slower(self):
        _, fast = run_cli("profile", "micro_mobilenet_v2", "--stage",
                          "quantized", "--frames", "1")
        _, slow = run_cli("profile", "micro_mobilenet_v2", "--stage",
                          "quantized", "--frames", "1",
                          "--resolver", "reference")

        def total(text):
            line = next(l for l in text.splitlines() if "end-to-end" in l)
            return float(line.split()[1])

        assert total(slow) > 20 * total(fast)


class TestLogDirAndLogShow:
    def test_sweep_log_dir_streams_loadable_logs(self, tmp_path):
        log_dir = tmp_path / "logs"
        code, text = run_cli(
            "sweep", "micro_mobilenet_v1", "--frames", "8",
            "--executor", "serial", "--variant", "clean",
            "--variant", "bgr:channel_order=bgr",
            "--log-dir", str(log_dir))
        assert f"EXray logs streamed to {log_dir}" in text
        from repro.instrument import EXrayLog
        for name in ("reference", "clean", "bgr"):
            log = EXrayLog.load(log_dir / name)
            assert len(log) == 8 and log.version == 2

    def test_validate_log_dir(self, tmp_path):
        log_dir = tmp_path / "edge-log"
        code, text = run_cli("validate", "micro_mobilenet_v1",
                             "--frames", "8", "--log-dir", str(log_dir))
        assert code == 0 and f"streamed to {log_dir}" in text
        from repro.instrument import EXrayLog
        assert len(EXrayLog.load(log_dir)) == 8

    def test_log_show_summarizes_directory(self, tmp_path):
        log_dir = tmp_path / "edge-log"
        run_cli("validate", "micro_mobilenet_v1", "--frames", "6",
                "--log-dir", str(log_dir))
        code, text = run_cli("log", "show", str(log_dir), "--frames", "2")
        assert code == 0
        assert "format version     v2" in text
        assert "6 inference" in text
        assert "mean latency" in text
        # the per-frame table printed the first two rows
        assert text.count("inference\n") >= 2 or "| inference" in text

    def test_log_show_missing_dir_exits_cleanly(self, tmp_path, capsys):
        code, _ = run_cli("log", "show", str(tmp_path / "nope"))
        assert code == 2
        assert "no EXray log" in capsys.readouterr().err

    def test_variant_named_reference_rejected_with_log_dir(self, tmp_path,
                                                           capsys):
        code, _ = run_cli("sweep", "micro_mobilenet_v1", "--frames", "4",
                          "--executor", "serial",
                          "--variant", "reference:stage=quantized",
                          "--log-dir", str(tmp_path / "logs"))
        assert code == 2
        assert "reserved" in capsys.readouterr().err
