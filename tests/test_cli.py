"""CLI tests: every subcommand end to end through ``repro.cli.main``."""

import io

import pytest

from repro.cli import main


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestListModels:
    def test_lists_all_models(self):
        code, text = run_cli("list-models")
        assert code == 0
        assert "micro_mobilenet_v2" in text and "nnlm_lite" in text
        assert "Mobilenet v2" in text  # paper family column


class TestExport:
    def test_exports_loadable_model(self, tmp_path):
        path = tmp_path / "v1.rpm"
        code, text = run_cli("export", "micro_mobilenet_v1",
                             "--stage", "quantized", "-o", str(path))
        assert code == 0 and path.exists()
        from repro.graph import load_model
        graph = load_model(path)
        assert graph.is_quantized


class TestTrain:
    def test_reports_cached_accuracy(self):
        code, text = run_cli("train", "micro_mobilenet_v1")
        assert code == 0 and "val_accuracy=" in text


class TestValidate:
    def test_clean_pipeline_exits_zero(self):
        code, text = run_cli("validate", "micro_mobilenet_v1", "--frames", "12")
        assert code == 0
        assert "verdict: HEALTHY" in text

    def test_injected_channel_bug_diagnosed_nonzero_exit(self):
        code, text = run_cli("validate", "micro_mobilenet_v1",
                             "--frames", "16", "--bug", "channel_order=bgr")
        assert code == 1
        assert "BGR->RGB" in text

    def test_rotation_bug_integer_value_parsed(self):
        code, text = run_cli("validate", "micro_mobilenet_v1",
                             "--frames", "16", "--bug", "rotation_k=1")
        assert code == 1
        assert "rotated" in text

    def test_kernel_bug_preset(self):
        code, text = run_cli("validate", "micro_mobilenet_v2",
                             "--stage", "quantized", "--frames", "16",
                             "--kernel-bugs", "paper-optimized")
        assert code == 1
        assert "depthwise_conv2d" in text

    def test_bad_bug_syntax_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("validate", "micro_mobilenet_v1", "--bug", "nonsense")

    def test_unknown_bug_key_exits_cleanly(self, capsys):
        # Regression: a typo'd key used to be silently ignored — the CLI ran
        # the *correct* pipeline and reported HEALTHY.
        code, _ = run_cli("validate", "micro_mobilenet_v1",
                          "--frames", "4", "--bug", "chanel_order=bgr")
        assert code == 2
        assert "chanel_order" in capsys.readouterr().err


class TestSweep:
    def test_default_lineup_flags_bugs(self):
        code, text = run_cli("sweep", "micro_mobilenet_v1", "--frames", "16")
        assert code == 1                      # bug-injected variants unhealthy
        assert "clean" in text and "rot90" in text
        assert "sweep verdict" in text

    def test_explicit_variants_serial_healthy(self):
        code, text = run_cli(
            "sweep", "micro_mobilenet_v1", "--frames", "12",
            "--executor", "serial", "--variant", "clean",
            "--variant", "also_clean:resolver=reference")
        assert code == 0
        assert "HEALTHY" in text and "also_clean" in text

    def test_parallel_matches_serial_output(self):
        argv = ("sweep", "micro_mobilenet_v1", "--frames", "12",
                "--variant", "clean", "--variant", "bgr:channel_order=bgr",
                "--variant", "rot:rotation_k=1",
                "--variant", "norm:normalization=[0,1]")
        code_s, serial = run_cli(*argv, "--executor", "serial")
        code_p, parallel = run_cli(*argv, "--executor", "process")
        assert (code_s, serial) == (code_p, parallel)

    def test_bad_variant_spec_rejected(self, capsys):
        code, _ = run_cli("sweep", "micro_mobilenet_v1", "--variant", "v:oops")
        assert code == 2
        assert "v:oops" in capsys.readouterr().err

    def test_unknown_override_key_exits_cleanly(self, capsys):
        code, _ = run_cli("sweep", "micro_mobilenet_v1", "--frames", "4",
                          "--executor", "process",
                          "--variant", "typo:chanel_order=bgr")
        assert code == 2
        assert "chanel_order" in capsys.readouterr().err

    def test_text_task_requires_explicit_variants(self, capsys):
        code, _ = run_cli("sweep", "nnlm_lite")
        assert code == 2
        assert "no default variants" in capsys.readouterr().err

    def test_stream_prints_progress_then_report(self):
        code, text = run_cli("sweep", "micro_mobilenet_v1", "--frames", "12",
                             "--executor", "serial", "--stream")
        assert code == 1
        lines = text.splitlines()
        assert lines[0].startswith("[1/4] ")  # verdicts stream first
        assert "[4/4]" in text and "sweep verdict" in text
        # The aggregate table still presents the lineup order.
        assert text.index("sweep verdict") > text.index("[4/4]")

    def test_max_failures_marks_skipped(self):
        code, text = run_cli("sweep", "micro_mobilenet_v1", "--frames", "12",
                             "--executor", "serial", "--max-failures", "1")
        assert code == 1
        assert "SKIPPED" in text and "skipped" in text

    def test_triage_appends_cluster_table(self):
        code, text = run_cli("sweep", "micro_mobilenet_v1", "--frames", "12",
                             "--executor", "serial", "--triage")
        assert code == 1
        assert "root-cause triage" in text
        assert "preprocessing" in text and "healthy" in text

    def test_bad_max_failures_exits_cleanly(self, capsys):
        code, _ = run_cli("sweep", "micro_mobilenet_v1", "--frames", "4",
                          "--executor", "serial", "--max-failures", "0")
        assert code == 2
        assert "max_failures" in capsys.readouterr().err


class TestProfile:
    def test_prints_profile_and_total(self):
        code, text = run_cli("profile", "micro_mobilenet_v2",
                             "--frames", "2", "--device", "pixel4_cpu")
        assert code == 0
        assert "end-to-end:" in text and "ms/frame" in text

    def test_reference_resolver_slower(self):
        _, fast = run_cli("profile", "micro_mobilenet_v2", "--stage",
                          "quantized", "--frames", "1")
        _, slow = run_cli("profile", "micro_mobilenet_v2", "--stage",
                          "quantized", "--frames", "1",
                          "--resolver", "reference")

        def total(text):
            line = next(l for l in text.splitlines() if "end-to-end" in l)
            return float(line.split()[1])

        assert total(slow) > 20 * total(fast)
