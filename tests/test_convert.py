"""Conversion pass tests: BN folding, fusion, DCE, quantization pass."""

import numpy as np
import pytest

from repro.convert import (
    QuantizationConfig,
    convert_to_mobile,
    eliminate_dead_nodes,
    fold_batch_norm,
    fuse_activations,
    quantize_graph,
)
from repro.runtime import Interpreter
from repro.util.errors import QuantizationError


class TestFoldBatchNorm:
    def test_bn_nodes_removed(self, small_cnn):
        folded = fold_batch_norm(small_cnn)
        assert not any(n.op == "batch_norm" for n in folded.nodes)

    def test_numerically_exact(self, small_cnn, rng):
        x = rng.normal(size=(4, 8, 8, 3)).astype(np.float32)
        a = Interpreter(small_cnn).invoke_single(x)
        b = Interpreter(fold_batch_norm(small_cnn)).invoke_single(x)
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-6)

    def test_folded_node_takes_bn_name(self, small_cnn):
        folded = fold_batch_norm(small_cnn)
        names = [n.name for n in folded.nodes]
        # Conv 'stem' folds into BN's slot: post-BN tensor name survives so
        # per-layer logs stay semantically aligned across stages.
        assert "stem_bn" in names and "stem" not in names

    def test_folded_weights_scaled(self, small_cnn):
        folded = fold_batch_norm(small_cnn)
        original = small_cnn.node("stem").weights["weights"]
        new = folded.node("stem_bn").weights["weights"]
        assert new.shape == original.shape
        assert not np.allclose(new, original)

    def test_bias_created(self, small_cnn):
        folded = fold_batch_norm(small_cnn)
        assert "bias" in folded.node("stem_bn").weights


class TestFuseActivations:
    def test_relu_nodes_fused(self, small_cnn):
        fused = fuse_activations(fold_batch_norm(small_cnn))
        acts = [n for n in fused.nodes if n.op == "activation"]
        assert not acts  # all relu/relu6 fused in this model

    def test_numerically_exact(self, small_cnn, rng):
        x = rng.normal(size=(4, 8, 8, 3)).astype(np.float32)
        a = Interpreter(small_cnn).invoke_single(x)
        b = Interpreter(fuse_activations(fold_batch_norm(small_cnn))).invoke_single(x)
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-6)

    def test_fused_attr_set(self, small_cnn):
        fused = fuse_activations(fold_batch_norm(small_cnn))
        assert fused.node("stem_act").attrs["activation"] == "relu6"
        assert fused.node("stem_act").op == "conv2d"

    def test_hard_swish_not_fused(self, rng):
        from repro.graph import GraphBuilder
        b = GraphBuilder("g")
        x = b.input("input", (None, 4, 4, 3))
        h = b.conv2d(x, rng.normal(size=(3, 3, 3, 4)).astype(np.float32), name="c")
        h = b.activation(h, "hard_swish", name="hs")
        b.mark_output(h)
        fused = fuse_activations(b.finish())
        assert any(n.op == "activation" for n in fused.nodes)


class TestDeadNodeElimination:
    def test_removes_unused(self, small_cnn, rng):
        from repro.graph import GraphBuilder
        b = GraphBuilder("g")
        x = b.input("input", (None, 4, 4, 3))
        h = b.conv2d(x, rng.normal(size=(1, 1, 3, 2)).astype(np.float32), name="used")
        b.conv2d(x, rng.normal(size=(1, 1, 3, 2)).astype(np.float32), name="dead")
        b.mark_output(h)
        pruned = eliminate_dead_nodes(b.finish())
        assert [n.name for n in pruned.nodes] == ["used"]

    def test_noop_when_all_live(self, small_cnn):
        assert len(eliminate_dead_nodes(small_cnn).nodes) == len(small_cnn.nodes)


class TestConvertToMobile:
    def test_node_count_shrinks(self, small_cnn):
        mobile = convert_to_mobile(small_cnn)
        assert len(mobile.nodes) < len(small_cnn.nodes)
        assert mobile.metadata["stage"] == "mobile"

    def test_equivalence(self, small_cnn, rng):
        x = rng.normal(size=(4, 8, 8, 3)).astype(np.float32)
        a = Interpreter(small_cnn).invoke_single(x)
        b = Interpreter(convert_to_mobile(small_cnn)).invoke_single(x)
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-6)


class TestQuantizeGraph:
    def test_structure(self, small_cnn_quantized):
        ops = [n.op for n in small_cnn_quantized.nodes]
        assert ops[0] == "quantize" and ops[-1] == "dequantize"
        assert small_cnn_quantized.is_quantized
        assert small_cnn_quantized.metadata["stage"] == "quantized"

    def test_internal_tensor_names_preserved(self, small_cnn_mobile,
                                             small_cnn_quantized):
        mobile_names = {n.name for n in small_cnn_mobile.nodes}
        quant_names = {n.name for n in small_cnn_quantized.nodes}
        assert mobile_names <= quant_names  # plus quantize/dequantize bridges

    def test_weights_are_int8(self, small_cnn_quantized):
        for node in small_cnn_quantized.nodes:
            if node.op in ("conv2d", "depthwise_conv2d", "dense"):
                assert node.weights["weights"].dtype == np.int8
                assert "weights" in node.weight_quant

    def test_bias_is_int32_with_product_scale(self, small_cnn_quantized):
        node = small_cnn_quantized.node("logits")
        assert node.weights["bias"].dtype == np.int32
        in_scale = small_cnn_quantized.spec(node.inputs[0]).quant.scale
        w_scale = node.weight_quant["weights"].scale
        np.testing.assert_allclose(node.weight_quant["bias"].scale,
                                   in_scale * w_scale)

    def test_per_channel_weight_scales(self, small_cnn_quantized):
        node = small_cnn_quantized.node("stem_act")
        assert node.weight_quant["weights"].per_channel
        assert node.weight_quant["weights"].scale.shape == (8,)

    def test_per_tensor_option(self, small_cnn_mobile, calib_batch):
        q = quantize_graph(small_cnn_mobile, [calib_batch],
                           QuantizationConfig(per_channel_weights=False))
        node = q.node("stem_act")
        assert not node.weight_quant["weights"].per_channel

    def test_softmax_fixed_scale(self, small_cnn_quantized):
        spec = small_cnn_quantized.spec("probs")
        np.testing.assert_allclose(spec.quant.scale, 1 / 256)

    def test_accuracy_preserving(self, small_cnn_mobile, small_cnn_quantized,
                                 calib_batch):
        a = Interpreter(small_cnn_mobile).invoke_single(calib_batch)
        b = Interpreter(small_cnn_quantized).invoke_single(calib_batch)
        # Probabilities should agree to a few quantization steps.
        assert np.abs(a - b).max() < 0.1
        assert (a.argmax(1) == b.argmax(1)).mean() >= 0.9

    def test_needs_representative_data(self, small_cnn_mobile):
        with pytest.raises(QuantizationError):
            quantize_graph(small_cnn_mobile, [])

    def test_unquantizable_op_rejected(self, rng):
        from repro.graph import GraphBuilder
        b = GraphBuilder("g")
        x = b.input("input", (None, 4), "int64")
        h = b.add("embedding", x, name="emb",
                  weights={"table": rng.normal(size=(10, 4)).astype(np.float32)})
        b.mark_output(h)
        with pytest.raises(QuantizationError):
            quantize_graph(b.finish(), [np.zeros((1, 4), np.int64)])

    def test_uint8_activations_option(self, small_cnn_mobile, calib_batch):
        q = quantize_graph(small_cnn_mobile, [calib_batch],
                           QuantizationConfig(activation_dtype="uint8"))
        assert q.spec("stem_act").dtype == "uint8"
        out = Interpreter(q).invoke_single(calib_batch)
        assert np.isfinite(out).all()
