"""Conversion-pass edge cases: fold/fuse safety conditions, quantized
structural ops, and failure-injection coverage the happy path misses."""

import numpy as np
import pytest

from repro.convert import (
    QuantizationConfig,
    convert_to_mobile,
    fold_batch_norm,
    fuse_activations,
    quantize_graph,
)
from repro.graph import GraphBuilder
from repro.kernels.quantized import KernelBugs
from repro.runtime import Interpreter, OpResolver


def bn_params(rng, c):
    return dict(
        mean=rng.normal(0, 0.2, c).astype(np.float32),
        variance=(np.abs(rng.normal(1, 0.2, c)) + 0.2).astype(np.float32),
        gamma=np.ones(c, np.float32),
        beta=np.zeros(c, np.float32),
    )


class TestFoldSafety:
    def test_bn_with_shared_producer_not_folded(self, rng):
        """If the conv output feeds both a BN and a skip connection, folding
        would change the skip value — the pass must leave it alone."""
        b = GraphBuilder("g")
        x = b.input("input", (None, 4, 4, 3))
        h = b.conv2d(x, rng.normal(0, 0.3, (3, 3, 3, 4)).astype(np.float32),
                     name="c")
        p = bn_params(rng, 4)
        bn = b.batch_norm(h, p["mean"], p["variance"], p["gamma"], p["beta"],
                          name="bn")
        out = b.add_tensors(bn, h, name="skip_add")  # h used twice
        b.mark_output(out)
        graph = b.finish()
        folded = fold_batch_norm(graph)
        assert any(n.op == "batch_norm" for n in folded.nodes)
        data = rng.normal(size=(2, 4, 4, 3)).astype(np.float32)
        np.testing.assert_allclose(Interpreter(graph).invoke_single(data),
                                   Interpreter(folded).invoke_single(data))

    def test_bn_on_graph_input_not_folded(self, rng):
        b = GraphBuilder("g")
        x = b.input("input", (None, 4, 4, 3))
        p = bn_params(rng, 3)
        h = b.batch_norm(x, p["mean"], p["variance"], p["gamma"], p["beta"],
                         name="bn")
        b.mark_output(h)
        folded = fold_batch_norm(b.finish())
        assert any(n.op == "batch_norm" for n in folded.nodes)

    def test_fold_through_dense(self, rng):
        b = GraphBuilder("g")
        x = b.input("input", (None, 6))
        h = b.dense(x, rng.normal(0, 0.3, (6, 4)).astype(np.float32), name="fc")
        p = bn_params(rng, 4)
        h = b.batch_norm(h, p["mean"], p["variance"], p["gamma"], p["beta"],
                         name="fc_bn")
        b.mark_output(h)
        graph = b.finish()
        folded = fold_batch_norm(graph)
        assert not any(n.op == "batch_norm" for n in folded.nodes)
        data = rng.normal(size=(5, 6)).astype(np.float32)
        np.testing.assert_allclose(Interpreter(graph).invoke_single(data),
                                   Interpreter(folded).invoke_single(data),
                                   rtol=1e-4, atol=1e-6)


class TestFuseSafety:
    def test_activation_with_shared_input_not_fused(self, rng):
        b = GraphBuilder("g")
        x = b.input("input", (None, 4, 4, 3))
        h = b.conv2d(x, rng.normal(0, 0.3, (1, 1, 3, 4)).astype(np.float32),
                     np.zeros(4, np.float32), name="c")
        a = b.activation(h, "relu", name="act")
        out = b.add_tensors(a, h, name="pre_act_skip")  # h consumed twice
        b.mark_output(out)
        graph = b.finish()
        fused = fuse_activations(graph)
        assert any(n.op == "activation" for n in fused.nodes)

    def test_fuse_into_add(self, rng):
        b = GraphBuilder("g")
        x = b.input("input", (None, 4, 4, 3))
        h1 = b.conv2d(x, rng.normal(0, 0.3, (1, 1, 3, 3)).astype(np.float32),
                      np.zeros(3, np.float32), name="c1")
        s = b.add_tensors(h1, x, name="res")
        out = b.activation(s, "relu", name="res_act")
        b.mark_output(out)
        fused = fuse_activations(b.finish())
        add_node = fused.node("res_act")
        assert add_node.op == "add" and add_node.attrs["activation"] == "relu"


class TestQuantizedStructuralOps:
    def build_branchy(self, rng):
        """Concat of two differently-scaled branches + residual add —
        exercises the rescale paths of quantized concat/add."""
        b = GraphBuilder("g")
        x = b.input("input", (None, 6, 6, 3))
        left = b.conv2d(x, rng.normal(0, 0.2, (1, 1, 3, 4)).astype(np.float32),
                        np.zeros(4, np.float32), name="left",
                        activation="relu")
        right = b.conv2d(x, rng.normal(0, 1.2, (3, 3, 3, 4)).astype(np.float32),
                         np.zeros(4, np.float32), name="right",
                         activation="relu")
        merged = b.add("concat", [left, right], name="merged",
                       attrs={"axis": -1})
        gate = b.add("avg_pool2d", merged, name="pool",
                     attrs={"pool_size": 2, "stride": 2, "padding": "valid"})
        b.mark_output(gate)
        return b.finish()

    def test_quantized_concat_rescales(self, rng):
        graph = self.build_branchy(rng)
        calib = [rng.uniform(-1, 1, (8, 6, 6, 3)).astype(np.float32)]
        quant = quantize_graph(graph, calib)
        data = rng.uniform(-1, 1, (4, 6, 6, 3)).astype(np.float32)
        float_out = Interpreter(graph).invoke_single(data)
        quant_out = Interpreter(quant).invoke_single(data)
        span = float(float_out.max() - float_out.min()) or 1.0
        assert np.abs(float_out - quant_out).max() / span < 0.05

    def test_quantized_pad_bug_observable_end_to_end(self, rng, small_cnn_mobile,
                                                     calib_batch):
        quant = quantize_graph(small_cnn_mobile, [calib_batch])
        # Insert an explicit pad path by running on a graph that has pads.
        from repro.zoo import get_model
        vg = get_model("micro_mobilenet_v2", "quantized")
        x, _ = (calib_batch, None)
        data = rng.uniform(-1, 1, (2, 32, 32, 3)).astype(np.float32)
        clean = Interpreter(vg, OpResolver()).invoke_single(data)
        bugged = Interpreter(
            vg, OpResolver(bugs=KernelBugs(pad_ignores_zero_point=True))
        ).invoke_single(data)
        assert not np.array_equal(clean, bugged)

    def test_quantize_twice_is_idempotent_error(self, small_cnn_quantized,
                                                calib_batch):
        from repro.util.errors import QuantizationError
        with pytest.raises(QuantizationError):
            quantize_graph(small_cnn_quantized, [calib_batch])


class TestMobileConversionOnZoo:
    @pytest.mark.parametrize("name", ["micro_inception", "micro_densenet",
                                      "deeplab_lite", "nnlm_lite"])
    def test_stage_equivalence(self, name):
        from repro.zoo import build_checkpoint, eval_data
        graph = build_checkpoint(name)
        mobile = convert_to_mobile(graph)
        x, _ = eval_data(name, 16)
        a = Interpreter(graph).invoke_single(x)
        b = Interpreter(mobile).invoke_single(x)
        np.testing.assert_allclose(a, b, rtol=1e-3, atol=1e-4)
