"""Dataflow-engine tests: intervals, liveness, and verified arena layouts.

Coverage contract: the interval domain's algebra behaves (empty/point/inf
edge cases included), the forward analysis is *sound* against concrete
execution (property-tested: sampled inputs through the interpreter never
escape the derived intervals), graph- and plan-derived liveness agree,
packed arenas pass the independent proof while a deliberately-corrupted
layout is rejected with named diagnostics, and the whole report
round-trips through its wire format.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import (
    ANALYSIS_SCHEMA_VERSION,
    AnalysisReport,
    ArenaLayout,
    Interval,
    analyze_graph,
    analyze_ranges,
    check_liveness_consistency,
    default_input_ranges,
    interference_graph,
    liveness_from_graph,
    liveness_from_plan,
    pack_arena,
    peak_live_bytes,
    verify_layout,
)
from repro.analysis.arena import ALIGNMENT, corrupt_layout_for_test
from repro.runtime.interpreter import Interpreter
from repro.runtime.plan import compile_plan
from repro.runtime.resolver import OpResolver
from repro.util.errors import GraphError, QuantizationError, ValidationError
from repro.zoo import get_model, list_models

INF = float("inf")


class TestInterval:
    def test_constructors_and_predicates(self):
        assert Interval.top() == Interval(-INF, INF)
        assert Interval.empty().is_empty
        assert Interval.point(3.0).is_point
        assert not Interval.top().is_bounded
        assert Interval(1.0, 4.0).is_bounded
        assert Interval(1.0, 4.0).width == 3.0
        assert Interval.empty().width == 0.0

    def test_contains_with_tolerance(self):
        iv = Interval(0.0, 1.0)
        assert iv.contains(1.0) and not iv.contains(1.001)
        assert iv.contains(1.001, tol=0.01)
        assert not Interval.empty().contains(0.0)

    def test_hull_and_intersect(self):
        a, b = Interval(0.0, 2.0), Interval(1.0, 5.0)
        assert a.hull(b) == Interval(0.0, 5.0)
        assert a.intersect(b) == Interval(1.0, 2.0)
        assert a.hull(Interval.empty()) == a
        assert Interval(0.0, 1.0).intersect(Interval(2.0, 3.0)).is_empty

    def test_add_and_mul_sign_cases(self):
        assert Interval(1.0, 2.0).add(Interval(-1.0, 3.0)) == Interval(0.0, 5.0)
        assert Interval(-2.0, 3.0).mul(Interval(-1.0, 4.0)) \
            == Interval(-8.0, 12.0)
        assert Interval(1.0, 2.0).mul(Interval.empty()).is_empty
        assert Interval.empty().add(Interval(0.0, 1.0)).is_empty

    def test_zero_times_infinity_is_zero(self):
        # The interval-arithmetic convention, not the IEEE NaN.
        assert Interval.point(0.0).mul(Interval.top()) == Interval.point(0.0)
        assert Interval(0.0, 1.0).mul(Interval(0.0, INF)) == Interval(0.0, INF)

    def test_affine_negative_scale_swaps_bounds(self):
        assert Interval(1.0, 2.0).affine(-3.0, 1.0) == Interval(-5.0, -2.0)
        assert Interval.empty().affine(2.0, 0.0).is_empty

    def test_clamp(self):
        assert Interval(-10.0, 10.0).clamp(0.0, 6.0) == Interval(0.0, 6.0)

    def test_to_doc_maps_infinities_to_null(self):
        assert Interval(1.5, 2.5).to_doc() == [1.5, 2.5]
        assert Interval.top().to_doc() == [None, None]


# --------------------------------------------------------------------------
# Soundness property: concrete execution never escapes the derived ranges.
# --------------------------------------------------------------------------

def _assert_execution_within_ranges(graph, rng, frames=3, tol=1e-4):
    facts = analyze_ranges(graph)
    interp = Interpreter(graph)
    seen: dict[str, np.ndarray] = {}
    interp.add_observer(lambda rec: seen.__setitem__(rec.node.output,
                                                    rec.output))
    for _ in range(frames):
        feeds = {}
        for name in graph.inputs:
            spec = graph.spec(name)
            shape = tuple(2 if d is None else d for d in spec.shape)
            iv = facts.input_ranges[name]
            lo = iv.lo if math.isfinite(iv.lo) else -2.0
            hi = iv.hi if math.isfinite(iv.hi) else 2.0
            feeds[name] = rng.uniform(lo, hi, shape).astype(spec.dtype)
        seen.clear()
        seen.update(feeds)
        interp.invoke(feeds)
        for tensor, arr in seen.items():
            iv = facts.ranges[tensor]
            a = np.asarray(arr, dtype=np.float64)
            slack = tol * max(1.0, abs(a).max())
            assert iv.contains(float(a.min()), tol=slack) \
                and iv.contains(float(a.max()), tol=slack), (
                    f"{tensor}: concrete [{a.min()}, {a.max()}] escapes "
                    f"derived [{iv.lo}, {iv.hi}]")


class TestRangeSoundness:
    def test_float_mobile_graph(self, small_cnn_mobile, rng):
        _assert_execution_within_ranges(small_cnn_mobile, rng)

    def test_quantized_graph(self, small_cnn_quantized, rng):
        # Integer kernels are exact; no floating slack needed on codes.
        _assert_execution_within_ranges(small_cnn_quantized, rng, tol=0.0)

    def test_zoo_model_with_pipeline_metadata(self, rng):
        graph = get_model("micro_mobilenet_v1", stage="mobile")
        facts = analyze_ranges(graph)
        # The recorded [-1,1] image normalization seeds a bounded input...
        assert facts.input_ranges[graph.inputs[0]] == Interval(-1.0, 1.0)
        # ...and every derived activation interval is bounded from it.
        assert all(facts.ranges[t].is_bounded for t in graph.tensors)
        _assert_execution_within_ranges(graph, rng, frames=2)

    def test_quantized_accumulators_recorded_within_int32(
            self, small_cnn_quantized):
        facts = analyze_ranges(small_cnn_quantized)
        weighted = [n.name for n in small_cnn_quantized.nodes
                    if n.op in ("conv2d", "depthwise_conv2d", "dense")]
        assert set(facts.accumulators) == set(weighted)
        for name in weighted:
            acc = facts.accumulators[name]
            assert -(2 ** 31) <= acc.lo <= acc.hi <= 2 ** 31 - 1

    def test_calibration_hints_consistent_on_real_quantization(
            self, small_cnn_quantized):
        # The quantization pass records observed ranges; on an uncorrupted
        # graph they must not contradict the derived reachable intervals.
        assert small_cnn_quantized.metadata["calibration_ranges"]
        facts = analyze_ranges(small_cnn_quantized)
        assert facts.contradictions == []

    def test_unbounded_input_stays_sound_not_crashy(self, small_cnn_mobile):
        # No pipeline metadata on the hand-built graph: inputs seed top and
        # the analysis still terminates with sound (possibly infinite) bounds.
        facts = analyze_ranges(small_cnn_mobile)
        assert facts.input_ranges[small_cnn_mobile.inputs[0]] == Interval.top()
        probs = facts.ranges[small_cnn_mobile.outputs[0]]
        assert 0.0 <= probs.lo and probs.hi <= 1.0  # softmax clamps anyway


class TestLiveness:
    def test_graph_liveness_anchors(self, small_cnn_mobile):
        live = liveness_from_graph(small_cnn_mobile)
        n = len(small_cnn_mobile.nodes)
        for name in small_cnn_mobile.inputs:
            assert live[name].start == -1
        for name in small_cnn_mobile.outputs:
            assert live[name].end == n
        assert set(live) == set(small_cnn_mobile.tensors)
        assert all(r.start <= r.end and r.nbytes > 0 for r in live.values())

    def test_plan_liveness_matches_graph_liveness(self, small_cnn_mobile):
        plan = compile_plan(small_cnn_mobile, OpResolver())
        assert check_liveness_consistency(small_cnn_mobile, plan) == []
        assert liveness_from_plan(plan) == liveness_from_graph(small_cnn_mobile)

    def test_leaky_refcount_detected_as_inconsistency(self, small_cnn_mobile):
        plan = compile_plan(small_cnn_mobile, OpResolver())
        tensor = next(iter(plan.initial_refcounts))
        plan.initial_refcounts[tensor] += 1
        mismatches = check_liveness_consistency(small_cnn_mobile, plan)
        assert mismatches and tensor in "".join(mismatches)

    def test_interference_is_symmetric_and_irreflexive(self, small_cnn_mobile):
        live = liveness_from_graph(small_cnn_mobile)
        adj = interference_graph(live)
        for a, neighbours in adj.items():
            assert a not in neighbours
            for b in neighbours:
                assert a in adj[b] and live[a].overlaps(live[b])

    def test_peak_is_between_largest_tensor_and_naive(self, small_cnn_mobile):
        live = liveness_from_graph(small_cnn_mobile)
        peak = peak_live_bytes(live)
        assert max(r.nbytes for r in live.values()) <= peak
        assert peak <= sum(r.nbytes for r in live.values())

    def test_batch_scales_live_bytes(self, small_cnn_mobile):
        one = liveness_from_graph(small_cnn_mobile, batch=1)
        four = liveness_from_graph(small_cnn_mobile, batch=4)
        assert all(four[t].nbytes == 4 * one[t].nbytes for t in one)


class TestArena:
    def test_packed_layout_verifies(self, small_cnn_mobile):
        layout = pack_arena(small_cnn_mobile)
        assert verify_layout(small_cnn_mobile, layout) == []
        assert layout.arena_bytes <= layout.naive_bytes
        assert all(slot.offset % ALIGNMENT == 0 for slot in layout.slots)

    def test_pack_from_plan_verifies_too(self, small_cnn_mobile):
        plan = compile_plan(small_cnn_mobile, OpResolver())
        layout = pack_arena(small_cnn_mobile, plan)
        assert verify_layout(small_cnn_mobile, layout) == []

    def test_arena_at_least_peak_live(self, small_cnn_mobile):
        layout = pack_arena(small_cnn_mobile)
        peak = peak_live_bytes(liveness_from_graph(small_cnn_mobile))
        assert layout.arena_bytes >= peak

    def test_corrupted_layout_rejected_with_named_diagnostics(
            self, small_cnn_mobile):
        bad = corrupt_layout_for_test(pack_arena(small_cnn_mobile))
        problems = verify_layout(small_cnn_mobile, bad)
        assert problems
        assert all(d.rule_id == "A001" and d.severity == "error"
                   for d in problems)
        assert any("overlap" in d.message for d in problems)

    def test_layout_doc_round_trip(self, small_cnn_mobile):
        layout = pack_arena(small_cnn_mobile, batch=2)
        doc = layout.to_doc()
        assert doc["schema_version"] > 0
        back = ArenaLayout.from_doc(doc)
        assert back == layout

    def test_layout_wrong_schema_version_rejected(self, small_cnn_mobile):
        doc = pack_arena(small_cnn_mobile).to_doc()
        doc["schema_version"] = 99
        with pytest.raises(ValidationError, match="schema version"):
            ArenaLayout.from_doc(doc)

    def test_compile_plan_attaches_verified_arena(self, small_cnn_mobile):
        plan = compile_plan(small_cnn_mobile, OpResolver(), arena=True)
        assert isinstance(plan.arena, ArenaLayout)
        assert verify_layout(small_cnn_mobile, plan.arena) == []
        # Default stays arena-free: packing is opt-in.
        assert compile_plan(small_cnn_mobile, OpResolver()).arena is None

    def test_attach_arena_refuses_unverifiable_layout(
            self, small_cnn_mobile, monkeypatch):
        import repro.analysis.arena as arena_mod
        real_pack = arena_mod.pack_arena
        monkeypatch.setattr(
            arena_mod, "pack_arena",
            lambda graph, plan=None, batch=1:
                corrupt_layout_for_test(real_pack(graph, plan, batch)))
        with pytest.raises(GraphError, match="failed verification"):
            compile_plan(small_cnn_mobile, OpResolver(), arena=True)


class TestAnalysisReport:
    def test_report_round_trip(self, small_cnn_mobile):
        report = analyze_graph(small_cnn_mobile, arena=True, target="t:mobile")
        assert report.ok and report.arena_verified
        doc = report.to_doc()
        assert doc["schema_version"] == ANALYSIS_SCHEMA_VERSION
        assert doc["arena_verified"] is True
        back = AnalysisReport.from_doc(doc)
        assert back.to_doc() == doc

    def test_report_wrong_schema_version_rejected(self):
        with pytest.raises(ValidationError, match="schema version"):
            AnalysisReport.from_doc({"schema_version": 0, "target": "t",
                                     "graph": "g", "batch": 1})

    def test_render_shows_gantt_memory_and_verdict(self, small_cnn_mobile):
        text = analyze_graph(small_cnn_mobile, arena=True).render()
        assert "value ranges & liveness" in text
        assert "live ranges (step -1.." in text
        assert "naive (one buffer per tensor)" in text
        assert "packed arena" in text and "[VERIFIED]" in text

    def test_rejected_arena_renders_diagnostics_and_fails_ok(
            self, small_cnn_mobile):
        report = analyze_graph(small_cnn_mobile, arena=True)
        report.arena = corrupt_layout_for_test(report.arena)
        report.arena_diagnostics = verify_layout(small_cnn_mobile,
                                                 report.arena)
        assert not report.arena_verified and not report.ok
        assert "[REJECTED]" in report.render()


class TestZooArenas:
    @pytest.mark.parametrize("model", list_models())
    def test_mobile_arena_verified_and_below_naive(self, model):
        report = analyze_graph(get_model(model, stage="mobile"), arena=True,
                               target=f"{model}:mobile")
        assert report.ok and report.arena_verified
        assert report.arena.arena_bytes < report.naive_bytes

    @pytest.mark.parametrize("model", ["micro_mobilenet_v1", "speech_cnn_a"])
    def test_quantized_arena_verified_and_below_naive(self, model):
        report = analyze_graph(get_model(model, stage="quantized"),
                               arena=True, target=f"{model}:quantized")
        assert report.ok and report.arena_verified
        assert report.arena.arena_bytes < report.naive_bytes

    def test_unquantizable_stage_raises_the_usual_error(self):
        # The CLI maps this to exit 2 and CI records the stage as skipped.
        with pytest.raises(QuantizationError):
            get_model("nnlm_lite", stage="quantized")
