"""Dataset tests: determinism, structure, and the engineered class signals."""

import numpy as np
import pytest

from repro.datasets import (
    COMMANDS,
    PlaybackReader,
    PlaybackRecorder,
    SyntheticDetection,
    SyntheticImageClassification,
    SyntheticSegmentation,
    SyntheticSentiment,
    SyntheticSpeechCommands,
    record_arrays,
)


class TestImages:
    def test_deterministic(self):
        a = SyntheticImageClassification(seed=5).sample(8, "train")
        b = SyntheticImageClassification(seed=5).sample(8, "train")
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_splits_differ(self):
        ds = SyntheticImageClassification(seed=5)
        a, _ = ds.sample(8, "train")
        b, _ = ds.sample(8, "test")
        assert not np.array_equal(a, b)

    def test_shapes_and_dtype(self):
        imgs, labels = SyntheticImageClassification(12, 80, 0).sample(5)
        assert imgs.shape == (5, 80, 80, 3) and imgs.dtype == np.uint8
        assert labels.shape == (5,) and labels.dtype == np.int64
        assert labels.min() >= 0 and labels.max() < 12

    def test_full_dynamic_range(self):
        imgs, _ = SyntheticImageClassification(seed=0).sample(32)
        assert imgs.min() < 30 and imgs.max() > 220

    def test_color_signal_channel_asymmetric(self):
        """Per-class mean channel intensities differ: a BGR swap destroys
        real information (the Figure 4(a) channel bug mechanism)."""
        ds = SyntheticImageClassification(seed=0)
        imgs, labels = ds.sample(300)
        means = np.stack([imgs[labels == c].mean(axis=(0, 1, 2))
                          for c in range(ds.num_classes) if (labels == c).any()])
        asym = np.abs(means[:, 0] - means[:, 2]).max()
        assert asym > 5.0  # dominant-channel signal present

    def test_orientation_signal(self):
        """Classes 0 (horizontal-ish) and 2 (vertical-ish stripes) have
        distinguishable row/column energy profiles."""
        ds = SyntheticImageClassification(seed=0)

        def directional_energy(c):
            rng_imgs = []
            imgs, labels = ds.sample(200)
            sel = imgs[labels == c].astype(np.float64).mean(axis=3)
            row_var = sel.mean(axis=2).var(axis=1).mean()
            col_var = sel.mean(axis=1).var(axis=1).mean()
            return row_var, col_var

        r0, c0 = directional_energy(0)
        r2, c2 = directional_energy(2)
        assert (r0 > c0) != (r2 > c2)  # orthogonal stripe orientations

    def test_describe_card(self):
        card = SyntheticImageClassification(seed=0).describe()
        assert card["num_classes"] == 12 and "seed" in card


class TestDetection:
    def test_annotations_within_bounds(self):
        ds = SyntheticDetection(4, 64, seed=1)
        imgs, anns = ds.sample(10)
        assert imgs.shape == (10, 64, 64, 3)
        for per_image in anns:
            assert 1 <= len(per_image) <= 3
            for ann in per_image:
                y0, x0, y1, x1 = ann.box
                assert 0 <= y0 < y1 <= 64 and 0 <= x0 < x1 <= 64
                assert 0 <= ann.label < 4

    def test_deterministic(self):
        a = SyntheticDetection(seed=2).sample(4)
        b = SyntheticDetection(seed=2).sample(4)
        np.testing.assert_array_equal(a[0], b[0])
        assert [[x.box for x in img] for img in a[1]] == \
               [[x.box for x in img] for img in b[1]]


class TestSegmentation:
    def test_masks_align_with_images(self):
        ds = SyntheticSegmentation(48, seed=3)
        imgs, masks = ds.sample(6)
        assert imgs.shape == (6, 48, 48, 3)
        assert masks.shape == (6, 48, 48)
        assert masks.max() < ds.NUM_CLASSES
        assert (masks > 0).any()  # at least one shape per scene

    def test_shape_pixels_brighter_than_background(self):
        ds = SyntheticSegmentation(48, seed=3)
        imgs, masks = ds.sample(10)
        fg = imgs[masks > 0].mean()
        bg = imgs[masks == 0].mean()
        assert fg > bg


class TestSpeech:
    def test_shapes(self):
        waves, labels = SyntheticSpeechCommands(seed=4).sample(6)
        assert waves.shape == (6, 4000) and waves.dtype == np.float32
        assert labels.max() < len(COMMANDS)

    def test_classes_spectrally_distinct(self):
        ds = SyntheticSpeechCommands(seed=4)
        waves, labels = ds.sample(100)
        # "left" (low tone) vs "right" (high tone): spectral centroid differs.
        freqs = np.fft.rfftfreq(4000, 1 / 4000)

        def centroid(c):
            sel = waves[labels == c]
            spec = np.abs(np.fft.rfft(sel, axis=1)).mean(axis=0)
            return (spec * freqs).sum() / spec.sum()

        assert centroid(3) > centroid(2) + 300

    def test_amplitude_varies(self):
        waves, _ = SyntheticSpeechCommands(seed=4).sample(50)
        peaks = np.abs(waves).max(axis=1)
        assert peaks.std() > 0.05


class TestText:
    def test_vocab_contains_cased_variants(self):
        ds = SyntheticSentiment(seed=0)
        assert "good0" in ds.token_to_id and "Good0" in ds.token_to_id
        assert ds.token_to_id["good0"] != ds.token_to_id["Good0"]

    def test_encode_pads_and_truncates(self):
        ds = SyntheticSentiment(seq_len=4, seed=0)
        ids = ds.encode(["good0"] * 10)
        assert ids.shape == (4,)
        ids = ds.encode(["good0"])
        assert (ids[1:] == ds.token_to_id["<pad>"]).all()

    def test_lowercase_changes_ids(self):
        ds = SyntheticSentiment(seed=0)
        raw = ds.encode(["Good0", "bad1"])
        low = ds.encode(["Good0", "bad1"], lowercase=True)
        assert raw[0] != low[0]       # cased token remapped
        assert raw[1] == low[1]       # already-lower token unchanged

    def test_labels_correlate_with_sentiment_words(self):
        ds = SyntheticSentiment(seed=0)
        reviews, labels = ds.sample_tokens(200)
        pos_hits = [sum(t.lower().startswith("good") for t in r)
                    for r in reviews]
        neg_hits = [sum(t.lower().startswith("bad") for t in r)
                    for r in reviews]
        score = np.array(pos_hits) - np.array(neg_hits)
        acc = ((score > 0).astype(int) == labels).mean()
        assert acc > 0.8


class TestPlayback:
    def test_roundtrip(self, tmp_path, rng):
        items = rng.integers(0, 255, (10, 4, 4, 3)).astype(np.uint8)
        labels = rng.integers(0, 5, 10)
        n = record_arrays(tmp_path / "pb", items, labels)
        assert n == 10
        reader = PlaybackReader(tmp_path / "pb")
        assert len(reader) == 10
        replayed = list(reader)
        for i, (item, label) in enumerate(replayed):
            np.testing.assert_array_equal(item, items[i])
            assert label == labels[i]

    def test_sharding(self, tmp_path, rng):
        rec = PlaybackRecorder(tmp_path / "pb", shard_size=3)
        for i in range(8):
            rec.append(rng.normal(size=(2, 2)))
        rec.close()
        reader = PlaybackReader(tmp_path / "pb")
        assert len(list(reader)) == 8

    def test_missing_index_rejected(self, tmp_path):
        from repro.util.errors import ValidationError
        with pytest.raises(ValidationError):
            PlaybackReader(tmp_path / "nothing")

    def test_none_labels(self, tmp_path, rng):
        record_arrays(tmp_path / "pb", rng.normal(size=(3, 2)))
        assert all(label is None for _, label in PlaybackReader(tmp_path / "pb"))
