"""Detection target encoding / prediction decoding round-trips."""

import numpy as np
import pytest

from repro.datasets.detection import BoxAnnotation
from repro.kernels.activations import softmax
from repro.metrics import mean_average_precision
from repro.pipelines.detection import GRID, decode_predictions, encode_targets


class TestEncodeTargets:
    def test_background_default(self):
        targets = encode_targets([[]], GRID, 48, 4)
        assert targets["cls"].sum() == 0 and targets["mask"].sum() == 0

    def test_object_assigned_to_center_cell(self):
        ann = BoxAnnotation(2, (8.0, 8.0, 16.0, 16.0))  # center (12,12) -> cell 1,1
        targets = encode_targets([[ann]], GRID, 48, 4)
        assert targets["cls"][0, 1, 1] == 3  # label+1
        assert targets["mask"][0, 1, 1, 0] == 1.0

    def test_box_offsets_centered(self):
        cell = 48 / GRID
        ann = BoxAnnotation(0, (cell, cell, 2 * cell, 2 * cell))  # exactly cell 1,1
        targets = encode_targets([[ann]], GRID, 48, 4)
        dy, dx, lh, lw = targets["box"][0, 1, 1]
        assert abs(dy) < 1e-6 and abs(dx) < 1e-6
        assert lh == pytest.approx(0.0, abs=1e-6)  # log(cell/cell)


class TestDecodeRoundTrip:
    def build_head(self, targets, num_classes=4, confidence=8.0):
        """Construct head logits that decode back to the encoded targets."""
        n, g, _ = targets["cls"].shape
        head = np.zeros((n, g, g, num_classes + 5), dtype=np.float32)
        head[..., 0] = confidence  # background by default
        for i in range(n):
            for gy in range(g):
                for gx in range(g):
                    cls = targets["cls"][i, gy, gx]
                    if cls > 0:
                        head[i, gy, gx, 0] = 0.0
                        head[i, gy, gx, cls] = confidence
                        head[i, gy, gx, num_classes + 1:] = targets["box"][i, gy, gx]
        return head

    def test_roundtrip_recovers_objects(self):
        anns = [[BoxAnnotation(1, (8.0, 8.0, 24.0, 24.0)),
                 BoxAnnotation(3, (30.0, 30.0, 44.0, 44.0))]]
        targets = encode_targets(anns, GRID, 48, 4)
        head = self.build_head(targets)
        decoded = decode_predictions(head, 4, 48)
        assert len(decoded[0]) == 2
        labels = sorted(d.label for d in decoded[0])
        assert labels == [1, 3]
        gt = [[(a.label, a.box) for a in anns[0]]]
        assert mean_average_precision(decoded, gt, 4) > 0.4

    def test_threshold_filters(self):
        targets = encode_targets([[]], GRID, 48, 4)
        head = self.build_head(targets)
        decoded = decode_predictions(head, 4, 48, score_threshold=0.5)
        assert decoded[0] == []

    def test_scores_are_softmax_probs(self):
        anns = [[BoxAnnotation(0, (8.0, 8.0, 24.0, 24.0))]]
        targets = encode_targets(anns, GRID, 48, 4)
        head = self.build_head(targets, confidence=3.0)
        decoded = decode_predictions(head, 4, 48, score_threshold=0.1)
        probs = softmax(head[0, 1, 1, :5])
        assert decoded[0][0].score == pytest.approx(float(probs.max()), abs=1e-5)
