"""Fleet control-plane tests: lease machine, uploads, worker loop, CLI.

The headline property is the fleet analogue of PR 5's partition
invariance: a coordinator drained over HTTP by concurrent workers serves
a ``/report`` byte-identical (modulo artifact ``log_dir`` paths) to the
single-process ``run_sweep`` of the same lineup. Around it, the fault
half pins the control plane's defensive contract: expired leases return
to the pool and the sweep still completes, duplicate uploads are
idempotent, corrupt uploads are rejected with the digest mismatch named
and the shard re-pooled, and ``/finalize`` re-plans every lost slice
into remainder manifests that merge seamlessly with the verified ones.
"""

import copy
import io
import json
import tarfile
import threading
import zipfile
from pathlib import Path

import pytest

from repro.cli import main
from repro.fleet import (
    CoordinatorClient,
    FleetProtocolError,
    FleetTransportError,
    SweepCoordinator,
    make_server,
    pack_artifact,
    run_worker,
    server_url,
    unpack_artifact,
)
from repro.util.errors import ValidationError
from repro.validate.merge import merge_shards
from repro.validate.shard import ShardManifest, plan_shards, run_shard
from repro.validate.sweep import run_sweep
from repro.validate.variants import SweepVariant

MODEL = "micro_mobilenet_v1"
FRAMES = 6

LINEUP = (
    SweepVariant("clean"),
    SweepVariant("tap", resolver="batched"),
    SweepVariant("rot90", {"rotation_k": 1}),
)


def make_manifests(n_shards=3, frames=FRAMES):
    # No reference entry: fleet workers rebuild it deterministically from
    # (model, frames, tag), exactly like `repro sweep serve` plans.
    return plan_shards(MODEL, list(LINEUP), n_shards=n_shards, frames=frames)


def stripped(report_doc):
    """A report doc with artifact-location noise removed.

    ``log_dir`` is the one field that legitimately differs between an
    in-process sweep and a fleet of artifacts — everything else must be
    byte-identical.
    """
    doc = copy.deepcopy(report_doc)
    for result in doc["results"]:
        result["log_dir"] = None
    return doc


def canonical(report_doc) -> str:
    return json.dumps(stripped(report_doc), sort_keys=True)


class FakeClock:
    """Injectable monotonic clock for deterministic lease-expiry tests."""

    def __init__(self):
        self.now = 100.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


def run_leased_shard(coordinator, grant, out_dir):
    """Execute a lease's manifest offline and return the packed artifact."""
    manifest = ShardManifest.from_doc(grant["manifest"])
    run_shard(manifest, out_dir, executor="serial")
    return pack_artifact(out_dir)


@pytest.fixture(scope="module")
def baseline():
    return run_sweep(MODEL, LINEUP, frames=FRAMES, executor="serial")


@pytest.fixture(scope="module")
def drained(tmp_path_factory):
    """A 3-shard coordinator drained over HTTP by two concurrent workers.

    Kept serving for the whole module so status/report/CLI tests can poke
    the settled fleet without re-running shards.
    """
    workdir = tmp_path_factory.mktemp("fleet")
    coordinator = SweepCoordinator(make_manifests(), workdir, ttl_s=120.0)
    server = make_server(coordinator)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = server_url(server)

    summaries = [None, None]

    def drain(slot):
        summaries[slot] = run_worker(url, name=f"worker-{slot}",
                                     executor="serial", poll_s=0.05)

    workers = [threading.Thread(target=drain, args=(slot,))
               for slot in range(2)]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=300)
    assert all(s is not None for s in summaries), "a worker never finished"
    yield coordinator, url, summaries
    server.shutdown()
    server.server_close()


class TestEndToEnd:
    def test_two_workers_drain_three_shards(self, drained):
        coordinator, _, summaries = drained
        assert all(s.ok for s in summaries)
        assert all(s.stop_reason == "complete" for s in summaries)
        done = sorted(sid for s in summaries
                      for sid in s.completed + s.duplicates)
        assert done == ["shard-000", "shard-001", "shard-002"]
        assert coordinator.complete

    def test_status_shows_every_shard_verified(self, drained):
        _, url, _ = drained
        status = CoordinatorClient(url).status()
        assert status["complete"] is True
        assert status["finalized"] is False
        assert status["counts"] == {"verified": 3}
        assert status["model"] == MODEL and status["frames"] == FRAMES
        assert all(s["state"] == "verified" for s in status["shards"])

    def test_report_byte_identical_to_run_sweep(self, drained, baseline):
        coordinator, url, _ = drained
        live = CoordinatorClient(url).report()
        assert canonical(live) == canonical(baseline.to_doc())
        # ... and to an offline merge over the very same artifact tree.
        offline = merge_shards(coordinator.shard_dirs(), triage=False)
        assert canonical(live) == canonical(offline.to_doc())
        assert live["notes"] == []

    def test_cli_sweep_status_on_complete_fleet(self, drained, tmp_path):
        _, url, _ = drained
        out = io.StringIO()
        code = main(["sweep", "status", url], out=out)
        assert code == 0  # complete → 0: `until repro sweep status` works
        text = out.getvalue()
        assert "complete" in text and "3 verified" in text
        assert "shard-000" in text

        report_json = tmp_path / "live.json"
        out = io.StringIO()
        code = main(["sweep", "status", url, "--json",
                     "--report-json", str(report_json)], out=out)
        assert code == 0
        assert json.loads(out.getvalue().split("live merged")[0])["complete"]
        doc = json.loads(report_json.read_text())
        assert [r["variant"]["name"] for r in doc["results"]] == \
            [v.name for v in LINEUP]

    def test_cli_worker_against_complete_fleet_exits_clean(self, drained):
        _, url, _ = drained
        out = io.StringIO()
        code = main(["sweep-worker", "run", "--coordinator", url,
                     "--executor", "serial"], out=out)
        assert code == 0
        assert "sweep complete" in out.getvalue()
        assert "0 failure(s)" in out.getvalue()


class TestReportInFlight:
    def test_report_before_completion_is_incomplete(self, tmp_path):
        coordinator = SweepCoordinator(make_manifests(), tmp_path / "w")
        # Nothing uploaded yet: every variant is planned-only.
        report = coordinator.report()
        assert all(r.status == "skipped" for r in report.results)
        assert any("never ran" in note for note in report.notes)

        # Upload exactly one shard; the live report must show its variant
        # with a real verdict and the rest skipped → INCOMPLETE.
        grant = coordinator.lease("w1")
        blob = run_leased_shard(coordinator, grant, tmp_path / "run")
        ack = coordinator.upload(grant["lease_id"], blob)
        assert ack["verified"] is True and ack["complete"] is False

        report = coordinator.report()
        done = [r for r in report.results if r.status != "skipped"]
        assert len(done) == 1 and done[0].completed
        assert done[0].variant.name == "clean"  # shard-000's slice
        assert [r.variant.name for r in report.results] == \
            [v.name for v in LINEUP]  # full lineup order, always
        assert "INCOMPLETE (2 skipped)" in report.render()
        assert len([n for n in report.notes if "never ran" in n]) == 2


class TestLeaseMachine:
    def test_expired_lease_returns_to_pool_and_sweep_completes(self, tmp_path):
        clock = FakeClock()
        coordinator = SweepCoordinator(
            make_manifests(n_shards=1), tmp_path / "w",
            ttl_s=10.0, clock=clock)
        first = coordinator.lease("doomed-worker")
        assert first["shard_id"] == "shard-000"

        # The worker dies silently; until the TTL passes the shard is
        # unavailable, afterwards it is re-leased to whoever asks.
        clock.advance(9.0)
        assert "retry_after_s" in coordinator.lease("patient-worker")
        clock.advance(2.0)
        second = coordinator.lease("patient-worker")
        assert second["shard_id"] == "shard-000"
        assert second["lease_id"] != first["lease_id"]
        status = coordinator.status()["shards"][0]
        assert status["times_lost"] == 1
        assert status["worker"] == "patient-worker"
        assert "expired" in status["last_error"]

        blob = run_leased_shard(coordinator, second, tmp_path / "run")
        ack = coordinator.upload(second["lease_id"], blob)
        assert ack["complete"] is True
        assert coordinator.complete
        report = coordinator.report()
        assert all(r.status != "skipped" for r in report.results)
        assert report.notes == []

    def test_dead_lease_upload_is_still_accepted_if_first(self, tmp_path):
        # An expired worker that finished anyway may still win the race:
        # its lease id is remembered, and accepting the artifact is
        # harmless because it is digest-verified like any other.
        clock = FakeClock()
        coordinator = SweepCoordinator(
            make_manifests(n_shards=1), tmp_path / "w",
            ttl_s=10.0, clock=clock)
        first = coordinator.lease("slow-worker")
        blob = run_leased_shard(coordinator, first, tmp_path / "run")
        clock.advance(11.0)
        second = coordinator.lease("replacement")
        assert second["shard_id"] == "shard-000"
        ack = coordinator.upload(first["lease_id"], blob)
        assert ack["verified"] is True
        # The replacement's later identical upload is a duplicate, not
        # an error.
        ack = coordinator.upload(second["lease_id"], blob)
        assert ack["duplicate"] is True

    def test_heartbeat_extends_lease(self, tmp_path):
        clock = FakeClock()
        coordinator = SweepCoordinator(
            make_manifests(n_shards=1), tmp_path / "w",
            ttl_s=10.0, clock=clock)
        grant = coordinator.lease("w1")
        clock.advance(8.0)
        beat = coordinator.heartbeat(grant["lease_id"])
        assert beat["ok"] is True and beat["state"] == "leased"
        clock.advance(8.0)  # t=16: dead without the beat at t=8
        assert "retry_after_s" in coordinator.lease("w2")
        shard = coordinator.status()["shards"][0]
        assert shard["state"] == "leased" and shard["times_lost"] == 0

    def test_stale_heartbeat_told_the_truth(self, tmp_path):
        clock = FakeClock()
        coordinator = SweepCoordinator(
            make_manifests(n_shards=1), tmp_path / "w",
            ttl_s=10.0, clock=clock)
        first = coordinator.lease("w1")
        clock.advance(11.0)
        coordinator.lease("w2")  # shard re-leased under a new lease id
        with pytest.raises(FleetProtocolError) as err:
            coordinator.heartbeat(first["lease_id"])
        assert err.value.status == 409
        assert "no longer live" in str(err.value)

    def test_unknown_lease_is_404(self, tmp_path):
        coordinator = SweepCoordinator(make_manifests(), tmp_path / "w")
        for call in (lambda: coordinator.heartbeat("nope"),
                     lambda: coordinator.upload("nope", b"x")):
            with pytest.raises(FleetProtocolError) as err:
                call()
            assert err.value.status == 404

    def test_manifests_from_different_sweeps_rejected(self, tmp_path):
        mixed = make_manifests()[:1] + plan_shards(
            MODEL, list(LINEUP), n_shards=3, frames=FRAMES + 2)[1:]
        with pytest.raises(ValidationError, match="different sweeps"):
            SweepCoordinator(mixed, tmp_path / "w")


class TestUploads:
    @pytest.fixture()
    def leased(self, tmp_path):
        """A 1-shard coordinator with a live lease and a good artifact."""
        coordinator = SweepCoordinator(
            make_manifests(n_shards=1), tmp_path / "w")
        grant = coordinator.lease("w1")
        blob = run_leased_shard(coordinator, grant, tmp_path / "run")
        return coordinator, grant, blob, tmp_path

    def test_duplicate_upload_is_idempotent(self, leased, baseline):
        coordinator, grant, blob, _ = leased
        first = coordinator.upload(grant["lease_id"], blob)
        assert first["verified"] is True
        again = coordinator.upload(grant["lease_id"], blob)
        assert again == {"ok": True, "duplicate": True,
                         "shard_id": "shard-000", "state": "verified"}
        # The duplicate changed nothing: the report still matches.
        assert canonical(coordinator.report().to_doc()) == \
            canonical(baseline.to_doc())

    def test_corrupt_upload_rejected_shard_repooled(self, leased):
        coordinator, grant, blob, tmp_path = leased
        # Tamper with report.json inside the archive: digests.json still
        # records the honest hash, so verification must name the mismatch.
        evil_dir = tmp_path / "evil"
        unpack_artifact(blob, evil_dir)
        report_path = evil_dir / "report.json"
        report_path.write_text(report_path.read_text() + " ")
        with pytest.raises(FleetProtocolError) as err:
            coordinator.upload(grant["lease_id"], pack_artifact(evil_dir))
        assert err.value.status == 422
        assert "digest" in str(err.value)
        assert "returned to pending" in str(err.value)

        shard = coordinator.status()["shards"][0]
        assert shard["state"] == "pending"
        assert "digest" in shard["last_error"]

        # The shard is re-leasable and an honest upload then succeeds.
        retry = coordinator.lease("w2")
        assert retry["shard_id"] == "shard-000"
        ack = coordinator.upload(retry["lease_id"], blob)
        assert ack["verified"] is True and coordinator.complete

    def test_wrong_shard_artifact_rejected(self, leased):
        coordinator, grant, _, tmp_path = leased
        # A structurally-valid artifact of a *different* plan must not be
        # accepted under this lease.
        other = plan_shards(MODEL, [SweepVariant("clean")], n_shards=1,
                            frames=FRAMES)[0]
        run_shard(other, tmp_path / "other", executor="serial")
        with pytest.raises(FleetProtocolError) as err:
            coordinator.upload(grant["lease_id"],
                               pack_artifact(tmp_path / "other"))
        assert err.value.status == 422
        assert "different plan" in str(err.value)
        assert coordinator.status()["shards"][0]["state"] == "pending"

    def test_garbage_blob_rejected(self, leased):
        coordinator, grant, _, _ = leased
        with pytest.raises(FleetProtocolError) as err:
            coordinator.upload(grant["lease_id"], b"not an archive at all")
        assert err.value.status == 422
        assert coordinator.status()["shards"][0]["state"] == "pending"


class TestFinalize:
    def test_remainders_complete_the_sweep_offline(self, tmp_path, baseline):
        coordinator = SweepCoordinator(make_manifests(), tmp_path / "w")
        grant = coordinator.lease("w1")
        blob = run_leased_shard(coordinator, grant, tmp_path / "run")
        coordinator.upload(grant["lease_id"], blob)

        doc = coordinator.finalize()
        assert doc["finalized"] is True and doc["complete"] is False
        assert len(doc["lost"]) == 2 and len(doc["remainder"]) == 2
        # Remainders are a fresh, self-consistent plan of the lost slices
        # carrying the full original lineup.
        remainders = [ShardManifest.from_doc(d) for d in doc["remainder"]]
        assert [m.shard_id for m in remainders] == \
            ["remainder-000", "remainder-001"]
        assert all(m.num_shards == 2 for m in remainders)
        assert all([v.name for v in m.lineup] == [v.name for v in LINEUP]
                   for m in remainders)

        # Finalize is a fence: no more leases; idempotent.
        assert coordinator.lease("late") == \
            {"complete": False, "finalized": True}
        assert coordinator.finalize() == doc

        # The advertised manifests run offline (`repro sweep-worker run`)
        # and their artifacts merge with the verified shard into the very
        # report the unbroken fleet would have served.
        remainder_dirs = []
        for path in doc["remainder_manifests"]:
            shard_dir = Path(path).parent
            run_shard(path, shard_dir, executor="serial")
            remainder_dirs.append(shard_dir)
        verified = [r.dir for r in coordinator._shards
                    if r.state == "verified"]
        merged = merge_shards(verified + remainder_dirs, triage=False)
        assert canonical(merged.to_doc()) == canonical(baseline.to_doc())

    def test_upload_to_lost_shard_409(self, tmp_path):
        coordinator = SweepCoordinator(make_manifests(), tmp_path / "w")
        grant = coordinator.lease("w1")
        coordinator.finalize()
        with pytest.raises(FleetProtocolError) as err:
            coordinator.upload(grant["lease_id"], b"whatever")
        assert err.value.status == 409
        assert "lost" in str(err.value)


class TestHTTPFace:
    @pytest.fixture()
    def served(self, tmp_path):
        coordinator = SweepCoordinator(make_manifests(), tmp_path / "w")
        server = make_server(coordinator)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield coordinator, server_url(server)
        server.shutdown()
        server.server_close()

    def test_lease_round_trips_manifest(self, served):
        coordinator, url = served
        grant = CoordinatorClient(url).lease("http-worker")
        assert grant["shard_id"] == "shard-000"
        manifest = ShardManifest.from_doc(grant["manifest"])
        assert manifest == coordinator._shards[0].manifest
        assert coordinator.status()["shards"][0]["worker"] == "http-worker"

    def test_protocol_errors_carry_status_and_detail(self, served):
        _, url = served
        client = CoordinatorClient(url)
        with pytest.raises(FleetProtocolError) as err:
            client.heartbeat("bogus")
        assert err.value.status == 404
        assert "unknown lease" in str(err.value)
        with pytest.raises(FleetProtocolError) as err:
            client.upload("bogus", b"")
        assert err.value.status == 400  # empty body refused before lease

    def test_unknown_endpoints_404(self, served):
        from repro.fleet import request_json
        _, url = served
        for method, path in (("GET", "/nope"), ("POST", "/nope")):
            with pytest.raises(FleetProtocolError) as err:
                request_json(f"{url}{path}", method=method)
            assert err.value.status == 404
            assert "no such endpoint" in str(err.value)

    def test_malformed_json_body_400(self, served):
        from repro.fleet import request_json
        _, url = served
        with pytest.raises(FleetProtocolError) as err:
            request_json(f"{url}/lease", method="POST", body=b"{oops",
                         content_type="application/json")
        assert err.value.status == 400
        assert "not valid JSON" in str(err.value)

    def test_unreachable_coordinator_is_transport_error(self):
        client = CoordinatorClient("http://127.0.0.1:1")  # nothing listens
        with pytest.raises(FleetTransportError):
            client.status()
        with pytest.raises(ValidationError, match="http"):
            CoordinatorClient("ftp://example.com")

    def test_cli_status_in_flight_exits_one(self, served):
        _, url = served
        out = io.StringIO()
        code = main(["sweep", "status", url], out=out)
        assert code == 1  # in flight: the CI poll loop keeps waiting
        assert "in flight" in out.getvalue()
        assert "3 pending" in out.getvalue()


class TestArtifactArchive:
    def make_tree(self, tmp_path):
        root = tmp_path / "artifact"
        (root / "logs" / "clean").mkdir(parents=True)
        (root / "manifest.json").write_text("{}")
        (root / "logs" / "clean" / "meta.json").write_text('{"a": 1}')
        return root

    def test_pack_unpack_round_trip(self, tmp_path):
        root = self.make_tree(tmp_path)
        dest = tmp_path / "out"
        unpack_artifact(pack_artifact(root), dest)
        assert (dest / "manifest.json").read_text() == "{}"
        assert (dest / "logs" / "clean" / "meta.json").read_text() == \
            '{"a": 1}'

    def test_pack_is_deterministic(self, tmp_path):
        root = self.make_tree(tmp_path)
        assert pack_artifact(root) == pack_artifact(root)

    def test_zip_uploads_accepted(self, tmp_path):
        root = self.make_tree(tmp_path)
        buf = io.BytesIO()
        with zipfile.ZipFile(buf, "w") as archive:
            for path in sorted(p for p in root.rglob("*") if p.is_file()):
                archive.writestr(path.relative_to(root).as_posix(),
                                 path.read_bytes())
        dest = tmp_path / "out"
        unpack_artifact(buf.getvalue(), dest)
        assert (dest / "logs" / "clean" / "meta.json").exists()

    def test_traversal_member_rejected(self, tmp_path):
        buf = io.BytesIO()
        with tarfile.open(fileobj=buf, mode="w") as tar:
            info = tarfile.TarInfo("../escape.txt")
            info.size = 2
            tar.addfile(info, io.BytesIO(b"hi"))
        with pytest.raises(ValidationError, match="escapes"):
            unpack_artifact(buf.getvalue(), tmp_path / "out")
        assert not (tmp_path / "escape.txt").exists()

    def test_symlink_member_rejected(self, tmp_path):
        buf = io.BytesIO()
        with tarfile.open(fileobj=buf, mode="w") as tar:
            info = tarfile.TarInfo("link")
            info.type = tarfile.SYMTYPE
            info.linkname = "/etc/passwd"
            tar.addfile(info)
        with pytest.raises(ValidationError, match="not a regular file"):
            unpack_artifact(buf.getvalue(), tmp_path / "out")


class ScriptedClient:
    """A fake CoordinatorClient that replays canned lease responses."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.heartbeats = 0

    def lease(self, worker):
        response = self.responses.pop(0)
        if isinstance(response, Exception):
            raise response
        return response

    def heartbeat(self, lease_id):
        self.heartbeats += 1
        return {"ok": True}

    def upload(self, lease_id, blob):
        raise AssertionError("no upload expected in this script")


class TestWorkerLoop:
    def test_waits_then_stops_on_complete(self):
        sleeps = []
        client = ScriptedClient([
            {"complete": False, "finalized": False, "retry_after_s": 0.25},
            {"complete": True, "finalized": False},
        ])
        summary = run_worker("http://fake", client=client,
                             sleep=sleeps.append)
        assert summary.stop_reason == "complete"
        assert summary.polls == 1 and summary.ok
        assert sleeps == [0.25]

    def test_transport_faults_retried_with_backoff(self):
        sleeps = []
        client = ScriptedClient([
            FleetTransportError("coordinator rebooting"),
            FleetTransportError("still rebooting"),
            {"complete": False, "finalized": True},
        ])
        summary = run_worker("http://fake", client=client, attempts=4,
                             base_delay=0.5, sleep=sleeps.append)
        assert summary.stop_reason == "finalized"
        assert len(sleeps) == 2  # one backoff per transport fault
        assert not client.responses

    def test_transport_budget_exhausted_raises(self):
        client = ScriptedClient(
            [FleetTransportError(f"down #{i}") for i in range(5)])
        with pytest.raises(FleetTransportError, match="down #2"):
            run_worker("http://fake", client=client, attempts=3,
                       sleep=lambda _s: None)
