"""Graph IR tests: builder, shape inference, validation, stats."""

import numpy as np
import pytest

from repro.graph import GraphBuilder, Node, TensorSpec
from repro.graph.shapes import infer_output_spec
from repro.util.errors import GraphError, ShapeError


class TestTensorSpec:
    def test_dynamic_batch_check(self):
        spec = TensorSpec("x", (None, 4, 4, 3))
        spec.check(np.zeros((7, 4, 4, 3)))  # any batch ok

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            TensorSpec("x", (None, 4)).check(np.zeros((2, 4, 4)))

    def test_static_dim_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            TensorSpec("x", (None, 4)).check(np.zeros((2, 5)))

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ShapeError):
            TensorSpec("x", (2,), "float16")

    def test_numel_and_nbytes(self):
        spec = TensorSpec("x", (None, 4, 4, 3), "int8")
        assert spec.numel(batch=2) == 96
        assert spec.nbytes(batch=2) == 96

    def test_json_roundtrip(self):
        spec = TensorSpec("x", (None, 3), "int64")
        restored = TensorSpec.from_json(spec.to_json())
        assert restored.shape == spec.shape and restored.dtype == spec.dtype


class TestNode:
    def test_unknown_op_rejected(self):
        with pytest.raises(GraphError):
            Node("n", "warp_drive", ["x"], ["y"])

    def test_no_outputs_rejected(self):
        with pytest.raises(GraphError):
            Node("n", "add", ["x"], [])

    def test_weight_quant_for_missing_weight_rejected(self):
        from repro.quantize import choose_qparams
        with pytest.raises(GraphError):
            Node("n", "conv2d", ["x"], ["y"],
                 weight_quant={"weights": choose_qparams(-1, 1)})

    def test_param_counting(self):
        node = Node("n", "conv2d", ["x"], ["y"],
                     weights={"weights": np.zeros((3, 3, 2, 4), np.float32)})
        assert node.num_params() == 72
        assert node.param_bytes() == 288


class TestBuilder:
    def test_duplicate_names_rejected(self, rng):
        b = GraphBuilder("g")
        x = b.input("input", (None, 4, 4, 3))
        b.conv2d(x, rng.normal(size=(3, 3, 3, 2)), name="c")
        with pytest.raises(GraphError):
            b.conv2d(x, rng.normal(size=(3, 3, 3, 2)), name="c")

    def test_unknown_input_rejected(self, rng):
        b = GraphBuilder("g")
        b.input("input", (None, 4, 4, 3))
        with pytest.raises(GraphError):
            b.conv2d("ghost", rng.normal(size=(3, 3, 3, 2)))

    def test_no_outputs_rejected(self, rng):
        b = GraphBuilder("g")
        b.input("input", (None, 4))
        with pytest.raises(GraphError):
            b.finish()

    def test_auto_names_unique(self, rng):
        b = GraphBuilder("g")
        x = b.input("input", (None, 4, 4, 3))
        y1 = b.conv2d(x, rng.normal(size=(1, 1, 3, 3)))
        y2 = b.conv2d(y1, rng.normal(size=(1, 1, 3, 3)))
        assert y1 != y2

    def test_graph_stats(self, small_cnn):
        assert small_cnn.num_layers() == len(small_cnn.nodes)
        assert small_cnn.num_params() > 0
        assert small_cnn.param_bytes() == sum(
            n.param_bytes() for n in small_cnn.nodes)
        assert not small_cnn.is_quantized

    def test_producers_consumers(self, small_cnn):
        producers = small_cnn.producers()
        consumers = small_cnn.consumers()
        assert producers["stem"].name == "stem"
        assert any(c.name == "stem_bn" for c in consumers["stem"])

    def test_node_lookup_error(self, small_cnn):
        with pytest.raises(GraphError):
            small_cnn.node("nope")
        with pytest.raises(GraphError):
            small_cnn.spec("nope")


class TestShapeInference:
    def x(self, shape, dtype="float32"):
        return TensorSpec("x", shape, dtype)

    def test_conv2d_same_stride2(self):
        spec = infer_output_spec(
            "conv2d", "y", [self.x((None, 9, 9, 3))],
            {"stride": 2, "padding": "same"},
            {"weights": np.zeros((3, 3, 3, 8))})
        assert spec.shape == (None, 5, 5, 8)

    def test_conv2d_channel_mismatch(self):
        with pytest.raises(ShapeError):
            infer_output_spec("conv2d", "y", [self.x((None, 9, 9, 4))],
                              {}, {"weights": np.zeros((3, 3, 3, 8))})

    def test_depthwise_multiplier(self):
        spec = infer_output_spec(
            "depthwise_conv2d", "y", [self.x((None, 8, 8, 4))],
            {"stride": 1, "padding": "same"},
            {"weights": np.zeros((3, 3, 4, 2))})
        assert spec.shape == (None, 8, 8, 8)

    def test_dense(self):
        spec = infer_output_spec("dense", "y", [self.x((None, 6, 10))], {},
                                 {"weights": np.zeros((10, 3))})
        assert spec.shape == (None, 6, 3)

    def test_global_avg_pool_keepdims(self):
        spec = infer_output_spec("global_avg_pool", "y",
                                 [self.x((None, 4, 4, 7))],
                                 {"keepdims": True}, {})
        assert spec.shape == (None, 1, 1, 7)

    def test_pad2d(self):
        spec = infer_output_spec("pad2d", "y", [self.x((None, 4, 5, 2))],
                                 {"paddings": ((1, 2), (0, 1))}, {})
        assert spec.shape == (None, 7, 6, 2)

    def test_add_broadcast(self):
        spec = infer_output_spec(
            "add", "y",
            [self.x((None, 4, 4, 8)), TensorSpec("b", (None, 1, 1, 8))], {}, {})
        assert spec.shape == (None, 4, 4, 8)

    def test_add_incompatible(self):
        with pytest.raises(ShapeError):
            infer_output_spec(
                "add", "y",
                [self.x((None, 4, 4, 8)), TensorSpec("b", (None, 4, 4, 7))],
                {}, {})

    def test_concat(self):
        spec = infer_output_spec(
            "concat", "y",
            [self.x((None, 4, 4, 3)), TensorSpec("b", (None, 4, 4, 5))],
            {"axis": -1}, {})
        assert spec.shape == (None, 4, 4, 8)

    def test_flatten(self):
        spec = infer_output_spec("flatten", "y", [self.x((None, 4, 4, 3))], {}, {})
        assert spec.shape == (None, 48)

    def test_embedding(self):
        spec = infer_output_spec("embedding", "y",
                                 [self.x((None, 16), "int64")], {},
                                 {"table": np.zeros((100, 8))})
        assert spec.shape == (None, 16, 8)

    def test_reduce_mean_seq(self):
        spec = infer_output_spec("reduce_mean_seq", "y",
                                 [self.x((None, 16, 8))], {}, {})
        assert spec.shape == (None, 8)

    def test_resize_nearest(self):
        spec = infer_output_spec("resize_nearest", "y",
                                 [self.x((None, 6, 6, 4))],
                                 {"out_h": 12, "out_w": 12}, {})
        assert spec.shape == (None, 12, 12, 4)

    def test_avg_pool_same(self):
        spec = infer_output_spec("avg_pool2d", "y", [self.x((None, 5, 5, 2))],
                                 {"pool_size": 3, "stride": 1,
                                  "padding": "same"}, {})
        assert spec.shape == (None, 5, 5, 2)

    def test_quantize_dtype(self):
        spec = infer_output_spec("quantize", "y", [self.x((None, 4))],
                                 {"dtype": "int8"}, {})
        assert spec.dtype == "int8"

    def test_unknown_op(self):
        with pytest.raises(ShapeError):
            infer_output_spec("mystery", "y", [self.x((1,))], {}, {})


class TestGraphValidation:
    def test_topological_order_enforced(self, small_cnn):
        graph = small_cnn
        graph.nodes = list(reversed(graph.nodes))
        with pytest.raises(GraphError):
            graph.validate()

    def test_missing_output_rejected(self, small_cnn):
        small_cnn.outputs = ["ghost"]
        with pytest.raises(GraphError):
            small_cnn.validate()
