"""Instrumentation tests: monitor lifecycle, per-layer capture, log store."""

import numpy as np
import pytest

from repro.instrument import EXrayLog, EdgeMLMonitor, MLEXray, save_log
from repro.runtime import Interpreter
from repro.util.errors import ValidationError


def run_frames(graph, monitor, x_frames):
    interp = Interpreter(graph)
    monitor.attach(interp)
    for i in range(len(x_frames)):
        monitor.on_inf_start()
        interp.invoke(x_frames[i:i + 1])
        monitor.on_inf_stop(interp)
    return interp


class TestMonitorLifecycle:
    def test_paper_api_names(self):
        assert MLEXray is EdgeMLMonitor  # MLEXray.on_inf_start() reads as in §3.2

    def test_frames_recorded(self, small_cnn, rng):
        monitor = EdgeMLMonitor()
        run_frames(small_cnn, monitor, rng.normal(size=(3, 8, 8, 3)).astype(np.float32))
        assert len(monitor.frames) == 3
        assert [f.step for f in monitor.frames] == [0, 1, 2]

    def test_double_start_rejected(self):
        monitor = EdgeMLMonitor()
        monitor.on_inf_start()
        with pytest.raises(ValidationError):
            monitor.on_inf_start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(ValidationError):
            EdgeMLMonitor().on_inf_stop()

    def test_lazy_frame_adopted_by_start(self):
        monitor = EdgeMLMonitor()
        monitor.log("early", 1.0)      # opens frame lazily
        monitor.on_inf_start()          # adopts it
        monitor.on_inf_stop()
        assert monitor.frames[0].scalars["early"] == 1.0

    def test_sensor_markers(self, small_cnn, rng):
        monitor = EdgeMLMonitor()
        monitor.on_sensor_start()
        monitor.on_sensor_stop()
        monitor.on_inf_start()
        monitor.on_inf_stop()
        assert "capture_ms" in monitor.frames[0].sensors

    def test_sensor_stop_without_start_rejected(self):
        with pytest.raises(ValidationError):
            EdgeMLMonitor().on_sensor_stop()

    # Regression: a lazily-opened frame with no following on_inf_stop used
    # to vanish — trailing sensor-only logs were silently lost.
    def test_flush_closes_trailing_lazy_frame(self):
        monitor = EdgeMLMonitor()
        monitor.log_sensor("orientation", 90)
        assert not monitor.frames
        frame = monitor.flush()
        assert frame is not None and len(monitor.frames) == 1
        assert monitor.frames[0].sensors["orientation"] == 90

    def test_flush_noop_without_pending_frame(self):
        monitor = EdgeMLMonitor()
        assert monitor.flush() is None and not monitor.frames

    def test_flush_leaves_inflight_inference_frame(self, small_cnn, rng):
        monitor = EdgeMLMonitor()
        monitor.on_inf_start()          # explicit window, not a lazy frame
        assert monitor.flush() is None
        monitor.on_inf_stop()           # still closable normally
        assert len(monitor.frames) == 1

    def test_flushed_frame_advances_step(self, small_cnn, rng):
        monitor = EdgeMLMonitor()
        run_frames(small_cnn, monitor, rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
        monitor.log_sensor("trailing", 1)
        monitor.flush()
        assert [f.step for f in monitor.frames] == [0, 1]
        monitor.on_inf_start()
        monitor.on_inf_stop()
        assert monitor.frames[-1].step == 2

    def test_latency_from_interpreter(self, small_cnn, rng):
        from repro.perfmodel import PIXEL4_CPU
        monitor = EdgeMLMonitor()
        interp = Interpreter(small_cnn, device=PIXEL4_CPU)
        monitor.attach(interp)
        monitor.on_inf_start()
        interp.invoke(rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
        frame = monitor.on_inf_stop(interp)
        assert frame.latency_ms == pytest.approx(interp.last_latency_ms)
        assert frame.memory_mb > 0


class TestCustomLogging:
    def test_log_tensor_scalar_other(self):
        monitor = EdgeMLMonitor()
        monitor.on_inf_start()
        monitor.log("t", np.ones(3))
        monitor.log("s", 2.5)
        monitor.log("o", "landscape")
        monitor.on_inf_stop()
        frame = monitor.frames[0]
        assert "t" in frame.tensors and frame.scalars["s"] == 2.5
        assert frame.sensors["o"] == "landscape"

    def test_log_copies_tensor(self):
        monitor = EdgeMLMonitor()
        monitor.on_inf_start()
        arr = np.zeros(3)
        monitor.log("t", arr)
        arr[:] = 9
        monitor.on_inf_stop()
        np.testing.assert_array_equal(monitor.frames[0].tensors["t"], 0)

    def test_wrap_logs_in_and_out(self):
        monitor = EdgeMLMonitor()
        fn = monitor.wrap("resize", lambda x: x * 2)
        monitor.on_inf_start()
        out = fn(np.ones(2))
        monitor.on_inf_stop()
        frame = monitor.frames[0]
        np.testing.assert_array_equal(frame.tensors["resize/in"], 1)
        np.testing.assert_array_equal(frame.tensors["resize/out"], 2)
        np.testing.assert_array_equal(out, 2)


class TestPerLayerCapture:
    def test_default_logs_skip_layer_tensors(self, small_cnn, rng):
        monitor = EdgeMLMonitor(per_layer=False)
        run_frames(small_cnn, monitor, rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
        frame = monitor.frames[0]
        assert not any(k.startswith("layer/") for k in frame.tensors)
        assert len(frame.layer_latency_ms) == len(small_cnn.nodes)

    def test_per_layer_tensors_captured(self, small_cnn, rng):
        monitor = EdgeMLMonitor(per_layer=True)
        interp = run_frames(small_cnn, monitor,
                            rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
        frame = monitor.frames[0]
        for node in small_cnn.nodes:
            assert f"layer/{node.name}" in frame.tensors

    def test_quantized_layers_dequantized(self, small_cnn_quantized, rng):
        monitor = EdgeMLMonitor(per_layer=True)
        run_frames(small_cnn_quantized, monitor,
                   rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
        layer = monitor.frames[0].tensors["layer/stem_act"]
        assert layer.dtype == np.float32  # comparable against float reference

    def test_raw_quantized_option(self, small_cnn_quantized, rng):
        monitor = EdgeMLMonitor(per_layer=True, dequantize_layers=False)
        run_frames(small_cnn_quantized, monitor,
                   rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
        assert monitor.frames[0].tensors["layer/stem_act"].dtype == np.int8

    def test_overhead_tracked(self, small_cnn, rng):
        monitor = EdgeMLMonitor(per_layer=True)
        run_frames(small_cnn, monitor, rng.normal(size=(2, 8, 8, 3)).astype(np.float32))
        assert monitor.monitor_overhead_ms > 0

    def test_summary(self, small_cnn, rng):
        monitor = EdgeMLMonitor()
        run_frames(small_cnn, monitor, rng.normal(size=(4, 8, 8, 3)).astype(np.float32))
        summary = monitor.summary()
        assert summary["num_frames"] == 4
        assert summary["mean_latency_ms"] > 0

    def test_summary_empty_rejected(self):
        with pytest.raises(ValidationError):
            EdgeMLMonitor().summary()


class TestLogStore:
    def test_save_load_roundtrip(self, small_cnn, rng, tmp_path):
        monitor = EdgeMLMonitor(per_layer=True)
        monitor_dir = tmp_path / "log"
        run_frames(small_cnn, monitor, rng.normal(size=(2, 8, 8, 3)).astype(np.float32))
        monitor.frames[0].scalars["label"] = 3.0
        nbytes = save_log(monitor, monitor_dir)
        assert nbytes > 0
        log = EXrayLog.load(monitor_dir)
        assert len(log) == 2
        assert log.frames[0].scalars["label"] == 3.0
        np.testing.assert_array_equal(
            log.frames[1].tensors["layer/probs"],
            monitor.frames[1].tensors["layer/probs"])
        assert log.log_bytes == nbytes

    def test_load_missing_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            EXrayLog.load(tmp_path / "nope")

    def test_save_log_flushes_trailing_frame(self, small_cnn, rng, tmp_path):
        monitor = EdgeMLMonitor()
        run_frames(small_cnn, monitor, rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
        monitor.log_sensor("battery", 0.5)     # trailing sensor-only log
        save_log(monitor, tmp_path / "log")
        log = EXrayLog.load(tmp_path / "log")
        assert len(log) == 2
        assert log.frames[1].sensors["battery"] == 0.5

    def test_from_monitor_flushes_trailing_frame(self, small_cnn, rng):
        monitor = EdgeMLMonitor()
        run_frames(small_cnn, monitor, rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
        monitor.log("trailing_tensor", np.ones(2))
        log = EXrayLog.from_monitor(monitor)
        assert len(log) == 2
        np.testing.assert_array_equal(log.frames[1].tensors["trailing_tensor"], 1)

    def test_from_monitor_view(self, small_cnn, rng):
        monitor = EdgeMLMonitor(per_layer=True)
        run_frames(small_cnn, monitor, rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
        log = EXrayLog.from_monitor(monitor)
        assert log.layer_names() == [n.name for n in small_cnn.nodes]

    def test_stacked_series(self, small_cnn, rng):
        monitor = EdgeMLMonitor()
        interp = Interpreter(small_cnn)
        monitor.attach(interp)
        for i in range(3):
            monitor.on_inf_start()
            out = interp.invoke(rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
            monitor.on_inf_stop(interp)
            monitor.frames[-1].tensors["model_output"] = next(iter(out.values()))[0]
        log = EXrayLog.from_monitor(monitor)
        assert log.stacked("model_output").shape == (3, 4)

    def test_layer_latency_by_type(self, small_cnn, rng):
        monitor = EdgeMLMonitor()
        run_frames(small_cnn, monitor, rng.normal(size=(2, 8, 8, 3)).astype(np.float32))
        by_type = EXrayLog.from_monitor(monitor).layer_latency_by_type()
        assert "conv2d" in by_type and "softmax" in by_type

    def test_missing_tensor_key_error_lists_available(self, small_cnn, rng):
        monitor = EdgeMLMonitor()
        run_frames(small_cnn, monitor, rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
        with pytest.raises(KeyError, match="available"):
            monitor.frames[0].tensor("nope")


class _CountingReads:
    """File wrapper recording the size of every read() it serves."""

    def __init__(self, handle):
        self._handle = handle
        self.read_sizes = []

    def read(self, size=-1):
        data = self._handle.read(size)
        self.read_sizes.append(len(data))
        return data

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self._handle.close()


class TestFileDigestChunking:
    """Pin that ``file_digest`` streams in bounded chunks.

    Artifact verification hashes multi-GB tensor shards on coordinator
    and worker alike; a regression to ``read()``-the-whole-file would be
    invisible to every digest-equality test and only show up as fleet
    OOMs, so the bound is asserted directly through the
    ``_open_for_hash`` seam.
    """

    def test_reads_bounded_and_digest_unchanged(self, tmp_path, monkeypatch):
        from repro.instrument import store

        path = tmp_path / "big.bin"
        payload = bytes(range(256)) * (4 * 4096 + 13)  # ~4 MiB, not aligned
        path.write_bytes(payload)
        expected = store.file_digest(path)

        wrappers = []

        def counting_open(p):
            wrapper = _CountingReads(p.open("rb"))
            wrappers.append(wrapper)
            return wrapper

        monkeypatch.setattr(store, "_open_for_hash", counting_open)
        assert store.file_digest(path) == expected
        assert len(wrappers) == 1
        sizes = wrappers[0].read_sizes
        assert len(sizes) > 3  # actually streamed, not one gulp
        assert max(sizes) <= store.HASH_CHUNK_BYTES
        assert sum(sizes) == len(payload)

    def test_log_digest_uses_the_same_bounded_reader(self, tmp_path,
                                                     monkeypatch):
        from repro.instrument import store

        root = tmp_path / "log"
        root.mkdir()
        (root / "meta.json").write_text("{}")
        (root / "tensors.bin").write_bytes(b"\x01" * (2 * store.HASH_CHUNK_BYTES + 7))
        expected = store.log_digest(root)

        sizes = []

        def counting_open(p):
            wrapper = _CountingReads(p.open("rb"))
            sizes.append(wrapper.read_sizes)
            return wrapper

        monkeypatch.setattr(store, "_open_for_hash", counting_open)
        assert store.log_digest(root) == expected
        assert all(max(s) <= store.HASH_CHUNK_BYTES for s in sizes if s)
