"""Integration: the complete Figure-1 story on trained zoo models.

Instrumented buggy edge app -> played-back data -> reference pipeline ->
DebugSession -> correct root-cause diagnosis. This is the paper's headline
workflow executed end to end.
"""

import numpy as np
import pytest

from repro import (
    MLEXray,
    EdgeApp,
    DebugSession,
    OpResolver,
    ReferenceOpResolver,
    PAPER_OPTIMIZED_BUGS,
    PAPER_REFERENCE_BUGS,
)
from repro.datasets import PlaybackReader, record_arrays
from repro.instrument import EXrayLog, save_log
from repro.pipelines import build_reference_app, make_preprocess
from repro.runtime import Interpreter
from repro.validate import per_layer_diff
from repro.zoo import eval_data, get_model
from repro.zoo.registry import image_dataset


@pytest.fixture(scope="module")
def demo_data():
    return image_dataset().sample(20, "integration")


@pytest.fixture(scope="module")
def v2_mobile():
    return get_model("micro_mobilenet_v2", "mobile")


@pytest.fixture(scope="module")
def v2_quant():
    return get_model("micro_mobilenet_v2", "quantized")


class TestChannelBugStory:
    def test_bgr_bug_caught_and_diagnosed(self, demo_data, v2_mobile):
        sensor, labels = demo_data
        buggy = make_preprocess(v2_mobile.metadata["pipeline"],
                                {"channel_order": "bgr"})
        edge = EdgeApp(v2_mobile, preprocess=buggy,
                       monitor=MLEXray("edge", per_layer=True))
        edge.run(sensor, labels)
        ref = build_reference_app(v2_mobile)
        ref.run(sensor, labels)
        report = DebugSession(edge.log(), ref.log()).run()
        assert report.accuracy.degraded
        assert any(a.diagnosis == "BGR->RGB" for a in report.issues)

    def test_clean_pipeline_healthy(self, demo_data, v2_mobile):
        sensor, labels = demo_data
        edge = EdgeApp(v2_mobile, monitor=MLEXray("edge", per_layer=True))
        edge.run(sensor, labels)
        ref = build_reference_app(v2_mobile)
        ref.run(sensor, labels)
        report = DebugSession(edge.log(), ref.log()).run()
        assert not report.accuracy.degraded


class TestQuantizationBugStory:
    def test_dwconv_bug_localized_to_layer2(self, demo_data, v2_mobile,
                                            v2_quant):
        """Figure 6 (left): the rMSE jump lands on the 2nd layer, a dwconv."""
        sensor, labels = demo_data
        edge = EdgeApp(v2_quant, resolver=OpResolver(bugs=PAPER_OPTIMIZED_BUGS),
                       monitor=MLEXray("edge", per_layer=True))
        edge.run(sensor, labels)
        ref = build_reference_app(v2_mobile)
        ref.run(sensor, labels)
        report = DebugSession(edge.log(), ref.log()).run()
        assert report.accuracy.degraded
        assert report.flagged_layers
        first = report.flagged_layers[0]
        assert first.op == "depthwise_conv2d"
        assert first.index == 1  # second layer
        quant_issue = [a for a in report.issues
                       if a.check == "quantization_health"]
        assert quant_issue and "depthwise_conv2d" in quant_issue[0].diagnosis

    def test_v3_avgpool_bug_constant_output(self):
        """Figure 5: quantized v3 under the reference resolver -> constant
        output, accuracy at chance."""
        quant3 = get_model("micro_mobilenet_v3", "quantized")
        x, labels = eval_data("micro_mobilenet_v3", 96)
        out = Interpreter(
            quant3, ReferenceOpResolver(bugs=PAPER_REFERENCE_BUGS)
        ).invoke_single(x)
        assert np.ptp(out, axis=0).max() < 1e-6  # constant output
        acc = (out.argmax(1) == labels).mean()
        assert acc < 0.2  # ~chance on 12 classes

    def test_v3_rmse_peaks_at_avgpool_layers(self, demo_data):
        """Figure 6 (right): nrMSE peaks at the SE average-pool layers."""
        sensor, labels = demo_data
        quant3 = get_model("micro_mobilenet_v3", "quantized")
        mobile3 = get_model("micro_mobilenet_v3", "mobile")
        edge = EdgeApp(quant3,
                       resolver=ReferenceOpResolver(bugs=PAPER_REFERENCE_BUGS),
                       monitor=MLEXray("edge", per_layer=True))
        edge.run(sensor[:8], labels[:8])
        ref = build_reference_app(mobile3)
        ref.run(sensor[:8], labels[:8])
        diffs = per_layer_diff(edge.log(), ref.log())
        pool_errors = [d.error for d in diffs if d.op == "avg_pool2d"]
        other_errors = [d.error for d in diffs
                        if d.op != "avg_pool2d"
                        and d.index < min(i.index for i in diffs
                                          if i.op == "avg_pool2d")]
        assert max(pool_errors) > 0.3
        assert max(pool_errors) > 3 * max(other_errors)


class TestPlaybackParity:
    def test_edge_and_reference_see_identical_bytes(self, demo_data, v2_mobile,
                                                    tmp_path):
        sensor, labels = demo_data
        record_arrays(tmp_path / "sd", sensor, labels)
        replayed = np.stack([item for item, _ in PlaybackReader(tmp_path / "sd")])
        np.testing.assert_array_equal(replayed, sensor)
        edge = EdgeApp(v2_mobile, monitor=MLEXray("edge"))
        edge.run(replayed[:4])
        ref = build_reference_app(v2_mobile, per_layer=False)
        ref.run(sensor[:4])
        for i in range(4):
            np.testing.assert_allclose(
                edge.log().frames[i].tensor("model_input"),
                ref.log().frames[i].tensor("model_input"), atol=1e-7)


class TestLogPersistenceFlow:
    def test_offline_validation_from_disk(self, demo_data, v2_mobile, tmp_path):
        """Logs survive the disk round-trip and validate identically —
        the paper's offline-validation mode."""
        sensor, labels = demo_data
        edge = EdgeApp(v2_mobile,
                       preprocess=make_preprocess(
                           v2_mobile.metadata["pipeline"],
                           {"rotation_k": 1}),
                       monitor=MLEXray("edge", per_layer=True))
        edge.run(sensor, labels)
        ref = build_reference_app(v2_mobile)
        ref.run(sensor, labels)
        save_log(edge.monitor, tmp_path / "edge")
        save_log(ref.monitor, tmp_path / "ref")
        report = DebugSession(EXrayLog.load(tmp_path / "edge"),
                              EXrayLog.load(tmp_path / "ref")).run()
        assert any(a.check == "orientation" and not a.passed
                   for a in report.assertions)
