"""Tests for padding arithmetic and window extraction."""

import numpy as np
import pytest

from repro.kernels.common import (
    conv_output_size,
    extract_patches,
    normalize_stride,
    resolve_padding,
    same_padding,
)
from repro.util.errors import KernelError


class TestStride:
    def test_scalar_expands(self):
        assert normalize_stride(2) == (2, 2)

    def test_pair_passthrough(self):
        assert normalize_stride((1, 3)) == (1, 3)

    def test_rejects_zero(self):
        with pytest.raises(KernelError):
            normalize_stride(0)


class TestSamePadding:
    @pytest.mark.parametrize("size,k,s", [(8, 3, 1), (8, 3, 2), (7, 3, 2),
                                          (5, 5, 1), (9, 2, 3)])
    def test_output_is_ceil_div(self, size, k, s):
        before, after = same_padding(size, k, s)
        out = (size + before + after - k) // s + 1
        assert out == -(-size // s)

    def test_asymmetric_extra_goes_after(self):
        before, after = same_padding(8, 3, 2)
        assert after >= before


class TestResolvePadding:
    def test_valid_is_zero(self):
        assert resolve_padding("valid", 8, 8, 3, 3, 1, 1) == ((0, 0), (0, 0))

    def test_explicit_passthrough(self):
        pad = ((1, 2), (0, 3))
        assert resolve_padding(pad, 8, 8, 3, 3, 1, 1) == pad

    def test_rejects_negative(self):
        with pytest.raises(KernelError):
            resolve_padding(((-1, 0), (0, 0)), 8, 8, 3, 3, 1, 1)

    def test_rejects_unknown_mode(self):
        with pytest.raises(KernelError):
            resolve_padding("wat", 8, 8, 3, 3, 1, 1)


class TestConvOutputSize:
    def test_basic(self):
        assert conv_output_size(8, 3, 1, (1, 1)) == 8
        assert conv_output_size(8, 3, 2, (0, 1)) == 4

    def test_window_too_large(self):
        with pytest.raises(KernelError):
            conv_output_size(2, 5, 1, (0, 0))


class TestExtractPatches:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 6, 7, 3))
        patches = extract_patches(x, 3, 3, 1, 1, ((0, 0), (0, 0)))
        assert patches.shape == (2, 4, 5, 3, 3, 3)

    def test_values_match_manual_window(self, rng):
        x = rng.normal(size=(1, 5, 5, 2))
        patches = extract_patches(x, 3, 3, 2, 2, ((0, 0), (0, 0)))
        np.testing.assert_allclose(patches[0, 1, 1], x[0, 2:5, 2:5, :])

    def test_padding_value_used(self):
        x = np.ones((1, 2, 2, 1))
        patches = extract_patches(x, 3, 3, 1, 1, ((1, 0), (1, 0)), pad_value=-5.0)
        assert patches.min() == -5.0

    def test_rejects_non_nhwc(self):
        with pytest.raises(KernelError):
            extract_patches(np.ones((3, 3)), 2, 2, 1, 1, ((0, 0), (0, 0)))

    def test_rejects_oversized_window(self):
        with pytest.raises(KernelError):
            extract_patches(np.ones((1, 2, 2, 1)), 4, 4, 1, 1, ((0, 0), (0, 0)))
