"""Float kernel correctness: vectorized kernels vs naive definitions."""

import numpy as np
import pytest

from repro import kernels as K
from repro.util.errors import KernelError


def naive_conv2d(x, w, stride, pad):
    """Obviously-correct quadruple-loop convolution for cross-checking."""
    n, h, wid, cin = x.shape
    kh, kw, _, cout = w.shape
    (pt, pb), (pl, pr) = pad
    xp = np.pad(x, ((0, 0), (pt, pb), (pl, pr), (0, 0)))
    oh = (xp.shape[1] - kh) // stride + 1
    ow = (xp.shape[2] - kw) // stride + 1
    out = np.zeros((n, oh, ow, cout))
    for b in range(n):
        for i in range(oh):
            for j in range(ow):
                window = xp[b, i * stride:i * stride + kh,
                            j * stride:j * stride + kw, :]
                for c in range(cout):
                    out[b, i, j, c] = (window * w[:, :, :, c]).sum()
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, "valid"), (2, "valid"),
                                                (1, "same"), (2, "same")])
    def test_matches_naive(self, rng, stride, padding):
        x = rng.normal(size=(2, 6, 6, 3)).astype(np.float32)
        w = rng.normal(size=(3, 3, 3, 4)).astype(np.float32)
        got = K.conv2d(x, w, stride=stride, padding=padding)
        from repro.kernels.common import resolve_padding
        pad = resolve_padding(padding, 6, 6, 3, 3, stride, stride)
        want = naive_conv2d(x.astype(np.float64), w.astype(np.float64),
                            stride, pad)
        np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-5)

    def test_bias_added_per_channel(self, rng):
        x = rng.normal(size=(1, 4, 4, 2)).astype(np.float32)
        w = np.zeros((1, 1, 2, 3), np.float32)
        bias = np.array([1.0, -2.0, 0.5], np.float32)
        out = K.conv2d(x, w, bias)
        for c, b in enumerate(bias):
            np.testing.assert_allclose(out[..., c], b)

    def test_1x1_conv_is_channel_matmul(self, rng):
        x = rng.normal(size=(2, 3, 3, 4)).astype(np.float32)
        w = rng.normal(size=(1, 1, 4, 5)).astype(np.float32)
        got = K.conv2d(x, w, padding="valid")
        want = x @ w[0, 0]
        np.testing.assert_allclose(got, want, rtol=1e-5)

    def test_rejects_channel_mismatch(self, rng):
        with pytest.raises(KernelError):
            K.conv2d(np.zeros((1, 4, 4, 3)), np.zeros((3, 3, 2, 4)))

    def test_rejects_bad_weight_rank(self):
        with pytest.raises(KernelError):
            K.conv2d(np.zeros((1, 4, 4, 3)), np.zeros((3, 3, 3)))

    def test_linearity(self, rng):
        x1 = rng.normal(size=(1, 5, 5, 2))
        x2 = rng.normal(size=(1, 5, 5, 2))
        w = rng.normal(size=(3, 3, 2, 2))
        lhs = K.conv2d(x1 + 2 * x2, w)
        rhs = K.conv2d(x1, w) + 2 * K.conv2d(x2, w)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-6, atol=1e-8)


class TestDepthwiseConv2d:
    def test_matches_per_channel_conv(self, rng):
        x = rng.normal(size=(2, 6, 6, 3)).astype(np.float32)
        w = rng.normal(size=(3, 3, 3, 1)).astype(np.float32)
        got = K.depthwise_conv2d(x, w, padding="same")
        for c in range(3):
            single = K.conv2d(x[..., c:c + 1], w[:, :, c:c + 1, :],
                              padding="same")
            np.testing.assert_allclose(got[..., c], single[..., 0], rtol=1e-5,
                                       atol=1e-6)

    def test_channel_multiplier(self, rng):
        x = rng.normal(size=(1, 4, 4, 2)).astype(np.float32)
        w = rng.normal(size=(3, 3, 2, 3)).astype(np.float32)
        out = K.depthwise_conv2d(x, w)
        assert out.shape == (1, 4, 4, 6)

    def test_stride_two_shape(self, rng):
        out = K.depthwise_conv2d(rng.normal(size=(1, 8, 8, 4)),
                                 rng.normal(size=(3, 3, 4, 1)), stride=2)
        assert out.shape == (1, 4, 4, 4)

    def test_rejects_channel_mismatch(self):
        with pytest.raises(KernelError):
            K.depthwise_conv2d(np.zeros((1, 4, 4, 3)), np.zeros((3, 3, 2, 1)))


class TestDense:
    def test_matches_matmul(self, rng):
        x = rng.normal(size=(5, 7))
        w = rng.normal(size=(7, 3))
        b = rng.normal(size=3)
        np.testing.assert_allclose(K.dense(x, w, b), x @ w + b)

    def test_leading_dims_preserved(self, rng):
        out = K.dense(rng.normal(size=(2, 3, 7)), rng.normal(size=(7, 4)))
        assert out.shape == (2, 3, 4)

    def test_rejects_dim_mismatch(self):
        with pytest.raises(KernelError):
            K.dense(np.zeros((2, 5)), np.zeros((4, 3)))


class TestPooling:
    def test_avg_pool_mean(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4, 1)
        out = K.avg_pool2d(x, 2)
        np.testing.assert_allclose(out[0, :, :, 0],
                                   [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_same_padding_excludes_pad(self):
        x = np.ones((1, 3, 3, 1))
        out = K.avg_pool2d(x, 2, stride=1, padding="same")
        # Every mean of ones must be exactly 1 (count excludes padding).
        np.testing.assert_allclose(out, 1.0)

    def test_max_pool(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4, 1)
        out = K.max_pool2d(x, 2)
        np.testing.assert_allclose(out[0, :, :, 0], [[5, 7], [13, 15]])

    def test_max_pool_padding_never_wins(self):
        x = -np.ones((1, 2, 2, 1))
        out = K.max_pool2d(x, 3, stride=1, padding="same")
        assert out.max() == -1.0

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 5, 5, 3))
        np.testing.assert_allclose(K.global_avg_pool(x), x.mean(axis=(1, 2)))
        assert K.global_avg_pool(x, keepdims=True).shape == (2, 1, 1, 3)

    def test_global_avg_pool_rejects_2d(self):
        with pytest.raises(KernelError):
            K.global_avg_pool(np.zeros((2, 3)))


class TestActivations:
    def test_relu6_clamps(self):
        x = np.array([-1.0, 3.0, 9.0])
        np.testing.assert_allclose(K.relu6(x), [0, 3, 6])

    def test_hard_swish_matches_definition(self, rng):
        x = rng.normal(size=100) * 4
        np.testing.assert_allclose(K.hard_swish(x),
                                   x * np.clip(x + 3, 0, 6) / 6, rtol=1e-6)

    def test_sigmoid_stable_at_extremes(self):
        out = K.sigmoid(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_softmax_rows_sum_to_one(self, rng):
        s = K.softmax(rng.normal(size=(4, 7)) * 50)
        np.testing.assert_allclose(s.sum(axis=-1), 1.0, rtol=1e-6)
        assert np.all(s >= 0)

    def test_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(K.softmax(x), K.softmax(x + 100),
                                   rtol=1e-5, atol=1e-7)

    def test_log_softmax_consistent(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(K.log_softmax(x), np.log(K.softmax(x)),
                                   rtol=1e-5, atol=1e-7)

    def test_gelu_midpoint(self):
        assert K.gelu(np.array([0.0]))[0] == 0.0

    def test_registry_complete(self):
        for name in ("relu", "relu6", "hard_swish", "hard_sigmoid", "sigmoid",
                     "tanh", "gelu", "linear"):
            assert name in K.ACTIVATIONS


class TestElementwise:
    def test_pad2d(self, rng):
        x = rng.normal(size=(1, 2, 2, 1))
        out = K.pad2d(x, ((1, 0), (0, 2)), value=9.0)
        assert out.shape == (1, 3, 4, 1)
        assert out[0, 0, 0, 0] == 9.0
        assert out[0, 0, 3, 0] == 9.0

    def test_pad2d_rejects_2d(self):
        with pytest.raises(KernelError):
            K.pad2d(np.zeros((2, 2)), ((1, 1), (1, 1)))

    def test_concat_axis(self, rng):
        a, b = rng.normal(size=(1, 2, 2, 3)), rng.normal(size=(1, 2, 2, 2))
        assert K.concat([a, b], axis=-1).shape == (1, 2, 2, 5)

    def test_concat_empty_rejected(self):
        with pytest.raises(KernelError):
            K.concat([])

    def test_flatten(self, rng):
        assert K.flatten(rng.normal(size=(3, 2, 2, 2))).shape == (3, 8)

    def test_resize_nearest_upsample(self):
        x = np.arange(4, dtype=np.float64).reshape(1, 2, 2, 1)
        out = K.resize_nearest(x, 4, 4)
        assert out.shape == (1, 4, 4, 1)
        np.testing.assert_allclose(out[0, :2, :2, 0], x[0, 0, 0, 0])


class TestNorm:
    def test_batch_norm_identity_params(self, rng):
        x = rng.normal(size=(4, 3, 3, 2)).astype(np.float32)
        out = K.batch_norm(x, np.zeros(2), np.ones(2), np.ones(2), np.zeros(2),
                           eps=0.0)
        np.testing.assert_allclose(out, x, rtol=1e-6)

    def test_batch_norm_standardizes(self, rng):
        x = rng.normal(3.0, 2.0, size=(1000, 2)).astype(np.float64)
        out = K.batch_norm(x, x.mean(0), x.var(0), np.ones(2), np.zeros(2),
                           eps=1e-8)
        np.testing.assert_allclose(out.mean(0), 0, atol=1e-6)
        np.testing.assert_allclose(out.std(0), 1, atol=1e-3)

    def test_batch_norm_rejects_bad_param_shape(self):
        with pytest.raises(KernelError):
            K.batch_norm(np.zeros((2, 3)), np.zeros(2), np.ones(2),
                         np.ones(2), np.zeros(2))

    def test_layer_norm_rows(self, rng):
        x = rng.normal(5, 3, size=(6, 10))
        out = K.layer_norm(x, np.ones(10), np.zeros(10))
        np.testing.assert_allclose(out.mean(-1), 0, atol=1e-5)


class TestAttention:
    def test_embedding_lookup(self, rng):
        table = rng.normal(size=(10, 4))
        ids = np.array([[1, 3], [0, 9]])
        out = K.embedding_lookup(table, ids)
        np.testing.assert_allclose(out[0, 1], table[3])

    def test_embedding_rejects_out_of_range(self, rng):
        with pytest.raises(KernelError):
            K.embedding_lookup(rng.normal(size=(5, 2)), np.array([5]))

    def test_attention_uniform_when_keys_equal(self, rng):
        q = rng.normal(size=(1, 3, 4))
        k = np.ones((1, 5, 4))
        v = rng.normal(size=(1, 5, 4))
        out = K.scaled_dot_product_attention(q, k, v)
        np.testing.assert_allclose(out, np.broadcast_to(v.mean(1, keepdims=True),
                                                        out.shape), rtol=1e-5)

    def test_attention_mask_excludes(self, rng):
        q = rng.normal(size=(1, 1, 4))
        k = rng.normal(size=(1, 3, 4))
        v = np.stack([np.full((3, 2), 9.0)])
        v[0, 0] = 1.0
        mask = np.array([[[True, False, False]]])
        out = K.scaled_dot_product_attention(q, k, v, mask)
        np.testing.assert_allclose(out, 1.0)

    def test_split_merge_heads_roundtrip(self, rng):
        x = rng.normal(size=(2, 5, 8))
        np.testing.assert_allclose(K.merge_heads(K.split_heads(x, 2)), x)

    def test_split_heads_rejects_indivisible(self, rng):
        with pytest.raises(KernelError):
            K.split_heads(rng.normal(size=(1, 2, 7)), 2)
