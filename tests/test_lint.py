"""Static-analysis tests: the rule registry, the driver, and the wiring.

Coverage contract: every registered rule id has a corrupt-graph fixture
that makes it (and only deliberately it) fire, every zoo model lints clean
at error severity, diagnostics round-trip through their wire format, the
convert passes enforce their post-conditions under ``verify=True``, and
the sweep pre-flight turns statically-doomed variants into skipped
results with diagnostics attached.
"""

from __future__ import annotations

import copy
import json
import re
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (
    Diagnostic,
    LINT_SCHEMA_VERSION,
    LintReport,
    RULES,
    lint_graph,
    make_diagnostic,
    preflight_lineup,
    rule_catalog,
    severity_rank,
    verify_pass,
)
from repro.analysis.arena import corrupt_layout_for_test, pack_arena
from repro.graph.spec import TensorSpec
from repro.quantize.params import QuantParams
from repro.runtime.plan import compile_plan
from repro.runtime.resolver import OpResolver
from repro.util.errors import GraphError, ValidationError
from repro.validate.variants import SweepVariant
from repro.zoo import get_model, list_models


# --------------------------------------------------------------------------
# Corrupt-graph factory: one deliberately-broken graph per rule id.
# Each breaker takes (mobile graph, quantized graph) copies it may mutate
# freely and returns (graph, lint_graph kwargs) such that exactly the rule
# under test has something to say.
# --------------------------------------------------------------------------

def _quant_spec(graph):
    return next(s for s in graph.tensors.values() if s.quant is not None)


def _break_g001(mobile, quantized):
    mobile.nodes[-1].inputs = ["ghost"]
    return mobile, {"categories": ("graph",)}


def _break_g002(mobile, quantized):
    # Move the head node to the front: it now consumes a tensor produced
    # only later, so the node list is no topological order.
    mobile.nodes.insert(0, mobile.nodes.pop())
    return mobile, {"categories": ("graph",)}


def _break_g003(mobile, quantized):
    stem = mobile.nodes[0]
    dead = copy.copy(stem)
    dead.name = "dead"
    dead.outputs = ["dead_out"]
    spec = mobile.tensors[stem.outputs[0]]
    mobile.tensors["dead_out"] = TensorSpec("dead_out", spec.shape, spec.dtype)
    mobile.nodes.append(dead)
    return mobile, {"categories": ("graph",)}


def _break_g004(mobile, quantized):
    out = mobile.nodes[0].outputs[0]
    old = mobile.tensors[out]
    mobile.tensors[out] = TensorSpec(out, (None, 1, 1, 999), old.dtype)
    return mobile, {"categories": ("graph",)}


def _break_g005(mobile, quantized):
    mobile.nodes[1].name = mobile.nodes[0].name
    return mobile, {"categories": ("graph",)}


def _break_q001(mobile, quantized):
    # QuantParams rejects bad scales at construction, so corrupt one the
    # way a broken loader or bit flip would: behind the frozen dataclass.
    object.__setattr__(_quant_spec(quantized).quant, "scale",
                       np.array(-1.0))
    return quantized, {"categories": ("quant",)}


def _break_q002(mobile, quantized):
    object.__setattr__(_quant_spec(quantized).quant, "zero_point",
                       np.array(999))
    return quantized, {"categories": ("quant",)}


def _break_q003(mobile, quantized):
    # Fully constructible through the public API: per-channel params whose
    # length disagrees with the weight's channel dimension.
    node = next(n for n in quantized.nodes if "weights" in n.weight_quant)
    node.weight_quant["weights"] = QuantParams(
        np.full(5, 0.1), np.zeros(5, np.int64), "int8", axis=0)
    return quantized, {"categories": ("quant",)}


def _break_q004(mobile, quantized):
    node = next(
        n for n in quantized.nodes
        if n.attrs.get("activation") in ("relu", "relu6")
        and len(n.outputs) == 1
        and quantized.tensors[n.outputs[0]].quant is not None)
    object.__setattr__(quantized.tensors[node.outputs[0]].quant,
                       "zero_point", np.array(127))
    return quantized, {"categories": ("quant",)}


def _break_q005(mobile, quantized):
    # Strip the quantization annotation off a tensor feeding a
    # quantized-domain consumer: the domain boundary loses its bridge.
    node = next(
        n for n in quantized.nodes
        if n.op not in ("quantize", "dequantize")
        and quantized.tensors.get(n.outputs[0]) is not None
        and quantized.tensors[n.outputs[0]].quant is not None)
    t = next(t for t in node.inputs
             if quantized.tensors.get(t) is not None
             and quantized.tensors[t].quant is not None)
    old = quantized.tensors[t]
    quantized.tensors[t] = TensorSpec(t, old.shape, "float32")
    return quantized, {"categories": ("quant",)}


def _break_p001(mobile, quantized):
    resolver = OpResolver()
    resolver._registry.pop(("softmax", False))
    return mobile, {"categories": ("plan",), "resolver": resolver}


def _break_p002(mobile, quantized):
    resolver = OpResolver()
    plan = compile_plan(mobile, resolver)
    tensor = next(iter(plan.initial_refcounts))
    plan.initial_refcounts[tensor] += 1  # the arena would leak this tensor
    return mobile, {"categories": ("plan",), "resolver": resolver,
                    "plan": plan}


def _break_p003(mobile, quantized):
    # global_avg_pool/softmax are not in the batched backend's native set.
    return mobile, {"categories": ("plan",), "backend": "batched"}


def _break_d001(mobile, quantized):
    # A 200k-deep int8 dense layer provably overflows the int32
    # accumulator: even one row of 128 * 127 products summed 200k times
    # exceeds 2**31.
    node = next(n for n in quantized.nodes if n.op == "dense")
    w = node.weights["weights"]
    node.weights["weights"] = np.full((200_000, w.shape[1]), 127, np.int8)
    return quantized, {"categories": ("dataflow",)}


def _break_d002(mobile, quantized):
    # An absurd output scale makes the requant multiplier so small every
    # reachable accumulator rounds to the same code: guaranteed saturation.
    node = next(n for n in quantized.nodes
                if n.op in ("conv2d", "depthwise_conv2d", "dense"))
    object.__setattr__(quantized.tensors[node.outputs[0]].quant,
                       "scale", np.array(1e9))
    return quantized, {"categories": ("dataflow",)}


def _break_d003(mobile, quantized):
    # Zeroed weights and bias make the stem conv's output provably the
    # constant 0 — the subgraph below it is constant-foldable.
    node = next(n for n in mobile.nodes if n.op == "conv2d")
    node.weights["weights"] = np.zeros_like(node.weights["weights"])
    if "bias" in node.weights:
        node.weights["bias"] = np.zeros_like(node.weights["bias"])
    return mobile, {"categories": ("dataflow",)}


def _break_d004(mobile, quantized):
    # Calibration claims the softmax output lives in [1000, 2000]; the
    # derived reachable range is inside [0, 1] — provably disjoint.
    sm = next(n for n in quantized.nodes if n.op == "softmax")
    quantized.metadata["calibration_ranges"] = {
        sm.outputs[0]: [1000.0, 2000.0]}
    return quantized, {"categories": ("dataflow",)}


def _break_a001(mobile, quantized):
    # A plan carrying a deliberately-corrupted arena layout (two live
    # tensors aliased onto the same bytes) must be rejected by the
    # independent verifier.
    resolver = OpResolver()
    plan = compile_plan(mobile, resolver)
    plan.arena = corrupt_layout_for_test(pack_arena(mobile, plan))
    return mobile, {"categories": ("arena",), "resolver": resolver,
                    "plan": plan}


def _break_s001(mobile, quantized):
    mobile.metadata["pipeline"] = {
        "task": "classification",
        "image_preprocess": {"target_size": [64, 64]},
    }
    return mobile, {"categories": ("pipeline",)}  # input is 8x8, not 64x64


def _break_s002(mobile, quantized):
    return mobile, {"categories": ("pipeline",),
                    "variant": SweepVariant("v", resolver="optimzed")}


def _break_s003(mobile, quantized):
    # Kernel-bug presets only affect quantized kernels; on a float stage
    # the preset is inert and the experiment tests nothing.
    return mobile, {"categories": ("pipeline",),
                    "variant": SweepVariant("v",
                                            kernel_bugs="paper-optimized")}


def _break_s004(mobile, quantized):
    mobile.metadata["pipeline"] = {"task": "classification"}
    return mobile, {"categories": ("pipeline",),
                    "variant": SweepVariant(
                        "v", {"chanel_order": "bgr"})}


BREAKERS = {
    "G001": _break_g001,
    "G002": _break_g002,
    "G003": _break_g003,
    "G004": _break_g004,
    "G005": _break_g005,
    "Q001": _break_q001,
    "Q002": _break_q002,
    "Q003": _break_q003,
    "Q004": _break_q004,
    "Q005": _break_q005,
    "D001": _break_d001,
    "D002": _break_d002,
    "D003": _break_d003,
    "D004": _break_d004,
    "P001": _break_p001,
    "P002": _break_p002,
    "P003": _break_p003,
    "A001": _break_a001,
    "S001": _break_s001,
    "S002": _break_s002,
    "S003": _break_s003,
    "S004": _break_s004,
}


class TestRuleCoverage:
    @pytest.mark.parametrize("rule_id", sorted(BREAKERS))
    def test_each_rule_fires_on_its_broken_graph(
            self, rule_id, small_cnn_mobile, small_cnn_quantized):
        graph, kwargs = BREAKERS[rule_id](small_cnn_mobile,
                                          small_cnn_quantized)
        report = lint_graph(graph, **kwargs)
        fired = {d.rule_id for d in report.diagnostics}
        assert rule_id in fired, report.render()

    def test_s005_fires_when_stage_cannot_build(self):
        # nnlm_lite has an embedding op, which full-integer quantization
        # rejects — its quantized stage cannot be built at all.
        reports = preflight_lineup(
            "nnlm_lite", [SweepVariant("q", stage="quantized")])
        fired = {d.rule_id for d in reports["q"].diagnostics}
        assert "S005" in fired
        assert reports["q"].has_errors

    def test_every_registered_rule_has_a_fixture(self):
        catalog = rule_catalog()
        assert {r.rule_id for r in catalog} == set(BREAKERS) | {"S005"}
        for rule in catalog:
            assert rule.doc  # catalog text for README/--help

    def test_readme_catalog_in_sync_with_registry(self):
        # The README rule-catalog table must list every registered rule id
        # exactly once, and nothing else — new rules ship with their docs.
        readme = Path(__file__).resolve().parents[1] / "README.md"
        rows = re.findall(r"^\| `([A-Z]\d{3})` \|", readme.read_text(),
                          flags=re.M)
        registered = sorted(r.rule_id for r in rule_catalog())
        assert sorted(rows) == registered, (
            f"README table drifted from the registry: "
            f"table={sorted(rows)} registry={registered}")

    def test_clean_graph_fires_nothing(self, small_cnn_mobile,
                                       small_cnn_quantized):
        for g in (small_cnn_mobile, small_cnn_quantized):
            report = lint_graph(g)
            assert not report.diagnostics, report.render()

    def test_plan_rules_skipped_on_structural_errors(self, small_cnn_mobile):
        # A miswired graph cannot compile a plan; the driver must report
        # the G-rule findings without drowning them in plan noise.
        small_cnn_mobile.nodes[-1].inputs = ["ghost"]
        report = lint_graph(small_cnn_mobile)
        categories = {d.category for d in report.diagnostics}
        assert "graph" in categories and "plan" not in categories


class TestDriver:
    def test_unknown_category_rejected(self, small_cnn_mobile):
        with pytest.raises(ValidationError, match="did you mean 'quant'"):
            lint_graph(small_cnn_mobile, categories=("qant",))

    def test_unknown_device_name_suggested(self, small_cnn_mobile):
        with pytest.raises(ValidationError, match="did you mean"):
            lint_graph(small_cnn_mobile, device="pixel4_cp")

    def test_device_accepted_by_name(self, small_cnn_mobile):
        report = lint_graph(small_cnn_mobile, backend="auto",
                            device="pixel4_cpu")
        assert not report.has_errors

    def test_make_diagnostic_unknown_rule(self):
        with pytest.raises(ValidationError, match="S005"):
            make_diagnostic("S05", "nope")


class TestZooModelsClean:
    @pytest.mark.parametrize("model", list_models())
    def test_mobile_stage_clean_at_error_level(self, model):
        report = lint_graph(get_model(model, stage="mobile"),
                            target=f"{model}:mobile")
        assert report.ok("error"), report.render()

    @pytest.mark.parametrize("model", ["micro_mobilenet_v2", "speech_cnn_a"])
    def test_quantized_stage_clean_at_error_level(self, model):
        report = lint_graph(get_model(model, stage="quantized"),
                            target=f"{model}:quantized")
        assert report.ok("error"), report.render()


class TestWireFormat:
    def test_diagnostic_round_trip(self):
        d = Diagnostic(rule_id="G001", severity="error", category="graph",
                       message="m", graph="g", node="n", tensor="t",
                       evidence={"op": "conv2d"})
        assert Diagnostic.from_doc(d.to_doc()) == d

    def test_diagnostic_omits_unset_anchors(self):
        d = Diagnostic(rule_id="S002", severity="error",
                       category="pipeline", message="m")
        doc = d.to_doc()
        assert "node" not in doc and "evidence" not in doc
        assert Diagnostic.from_doc(doc) == d

    def test_diagnostic_missing_field_named(self):
        with pytest.raises(ValidationError, match="severity"):
            Diagnostic.from_doc({"rule": "G001", "category": "graph",
                                 "message": "m"})

    def test_numpy_evidence_survives_json_dumps(self):
        # Rules naturally attach numpy scalars/arrays as evidence; the
        # Diagnostic constructor canonicalizes them so the *real*
        # json.dumps (no default= hook) serializes the document.
        d = make_diagnostic(
            "G001", "m",
            evidence={"f": np.float32(1.5), "i": np.int64(7),
                      "b": np.bool_(True),
                      "arr": np.arange(3, dtype=np.int32),
                      5: (np.float64(0.25),)})
        text = json.dumps(d.to_doc())
        back = Diagnostic.from_doc(json.loads(text))
        assert back.evidence == {"f": 1.5, "i": 7, "b": True,
                                 "arr": [0, 1, 2], "5": [0.25]}

    def test_report_round_trip(self, small_cnn_mobile):
        small_cnn_mobile.nodes[-1].inputs = ["ghost"]
        report = lint_graph(small_cnn_mobile, backend="optimized")
        doc = report.to_doc()
        assert doc["schema_version"] == LINT_SCHEMA_VERSION
        back = LintReport.from_doc(doc)
        assert back.diagnostics == report.diagnostics
        assert back.target == report.target
        assert back.backend == "optimized"

    def test_report_wrong_schema_version_rejected(self):
        with pytest.raises(ValidationError, match="schema version"):
            LintReport.from_doc({"schema_version": 99, "target": "t",
                                 "diagnostics": []})

    def test_severity_rank_orders_and_rejects(self):
        assert (severity_rank("info") < severity_rank("warning")
                < severity_rank("error"))
        with pytest.raises(ValidationError, match="did you mean"):
            severity_rank("warnign")


class TestConvertVerify:
    def test_passes_verify_clean_conversion(self, small_cnn, calib_batch):
        from repro.convert import convert_to_mobile, quantize_graph
        mobile = convert_to_mobile(small_cnn, verify=True)
        quantize_graph(mobile, [calib_batch], verify=True)

    def test_verify_pass_raises_on_broken_graph(self, small_cnn_mobile):
        small_cnn_mobile.nodes[-1].inputs = ["ghost"]
        with pytest.raises(GraphError, match="G001"):
            verify_pass(small_cnn_mobile, "some_pass")

    def test_forbid_escalates_warnings(self, small_cnn_mobile):
        graph, _ = _break_g003(small_cnn_mobile, None)
        verify_pass(graph, "x")  # dead node is only a warning...
        with pytest.raises(GraphError, match="G003"):
            verify_pass(graph, "x", forbid=("G003",))  # ...unless forbidden


class TestSweepPreflight:
    def test_doomed_variant_skipped_with_diagnostics(self):
        from repro.validate.reporting import SweepReport
        from repro.validate.sweep import run_sweep

        report = run_sweep(
            "micro_mobilenet_v1",
            [SweepVariant("clean"),
             SweepVariant("doomed", resolver="optimzed")],
            frames=4, executor="serial")
        doomed = report.result("doomed")
        assert doomed.status == "skipped"
        assert [d.rule_id for d in doomed.diagnostics] == ["S002"]
        assert not report.result("clean").diagnostics

        # The diagnostics survive the sweep wire format; clean variants'
        # documents stay byte-identical to the pre-diagnostics format.
        doc = report.to_doc()
        by_name = {r["variant"]["name"]: r for r in doc["results"]}
        assert "diagnostics" not in by_name["clean"]
        assert by_name["doomed"]["diagnostics"][0]["rule"] == "S002"
        back = SweepReport.from_doc(doc)
        assert back.result("doomed").diagnostics == doomed.diagnostics

    def test_preflight_off_raises(self):
        from repro.validate.sweep import run_sweep

        with pytest.raises(ValidationError, match="optimzed"):
            run_sweep("micro_mobilenet_v1",
                      [SweepVariant("doomed", resolver="optimzed")],
                      frames=2, executor="serial", preflight=False)

    def test_warning_findings_ride_along_on_run_variants(self):
        from repro.validate.sweep import run_sweep

        # An inert kernel-bug preset is only a warning: the variant still
        # runs, with the advisory attached to its completed result.
        report = run_sweep(
            "micro_mobilenet_v1",
            [SweepVariant("inert", kernel_bugs="paper-optimized")],
            frames=4, executor="serial")
        result = report.result("inert")
        assert result.completed
        assert [d.rule_id for d in result.diagnostics] == ["S003"]

    def test_valid_lineup_report_unchanged(self):
        from repro.validate.sweep import run_sweep

        report = run_sweep("micro_mobilenet_v1", [SweepVariant("clean")],
                           frames=4, executor="serial")
        doc = report.to_doc()
        assert all("diagnostics" not in r for r in doc["results"])
        assert "pre-flight" not in report.render()
