"""Task-metric tests: top-k, confusion, detection AP/NMS, mIoU."""

import numpy as np
import pytest

from repro.metrics import (
    DetectionResult,
    average_precision,
    confusion_matrix,
    iou,
    mean_average_precision,
    mean_iou,
    non_max_suppression,
    top_1_accuracy,
    top_k_accuracy,
)
from repro.util.errors import ValidationError


class TestTopK:
    def test_top1(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert top_1_accuracy(scores, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_top_k_recovers(self):
        scores = np.array([[0.5, 0.3, 0.2]])
        assert top_k_accuracy(scores, np.array([1]), k=1) == 0.0
        assert top_k_accuracy(scores, np.array([1]), k=2) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            top_1_accuracy(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_misaligned_rejected(self):
        with pytest.raises(ValidationError):
            top_1_accuracy(np.zeros((2, 3)), np.zeros(3, dtype=int))


class TestConfusion:
    def test_diagonal_for_perfect(self):
        labels = np.array([0, 1, 2, 1])
        mat = confusion_matrix(labels, labels, 3)
        assert mat.trace() == 4 and mat.sum() == 4

    def test_off_diagonal(self):
        mat = confusion_matrix(np.array([1]), np.array([0]), 2)
        assert mat[0, 1] == 1


class TestIoU:
    def test_identical_boxes(self):
        assert iou((0, 0, 2, 2), (0, 0, 2, 2)) == 1.0

    def test_disjoint(self):
        assert iou((0, 0, 1, 1), (5, 5, 6, 6)) == 0.0

    def test_half_overlap(self):
        assert iou((0, 0, 2, 2), (0, 1, 2, 3)) == pytest.approx(1 / 3)

    def test_degenerate(self):
        assert iou((0, 0, 0, 0), (0, 0, 1, 1)) == 0.0


def det(label, score, box):
    return DetectionResult(label=label, score=score, box=box)


class TestAveragePrecision:
    def test_perfect_predictions(self):
        gt = [[(0, (0.0, 0.0, 10.0, 10.0))]]
        preds = [[det(0, 0.9, (0.0, 0.0, 10.0, 10.0))]]
        assert average_precision(preds, gt, 0) == pytest.approx(1.0)

    def test_miss_scores_zero(self):
        gt = [[(0, (0.0, 0.0, 10.0, 10.0))]]
        preds = [[det(0, 0.9, (50.0, 50.0, 60.0, 60.0))]]
        assert average_precision(preds, gt, 0) == 0.0

    def test_duplicate_detections_penalized(self):
        gt = [[(0, (0.0, 0.0, 10.0, 10.0))]]
        box = (0.0, 0.0, 10.0, 10.0)
        dup = [[det(0, 0.9, box), det(0, 0.8, box), det(0, 0.7, box)]]
        single = [[det(0, 0.9, box)]]
        assert average_precision(dup, gt, 0) < average_precision(single, gt, 0) + 1e-9
        assert average_precision(dup, gt, 0) == pytest.approx(1.0)  # 11-pt interp

    def test_no_gt_gives_zero(self):
        assert average_precision([[det(0, 0.9, (0, 0, 1, 1))]], [[]], 0) == 0.0

    def test_map_averages_classes(self):
        gt = [[(0, (0.0, 0.0, 10.0, 10.0)), (1, (20.0, 20.0, 30.0, 30.0))]]
        preds = [[det(0, 0.9, (0.0, 0.0, 10.0, 10.0))]]  # class 1 missed
        assert mean_average_precision(preds, gt, 2) == pytest.approx(0.5)


class TestNMS:
    def test_suppresses_overlaps(self):
        dets = [det(0, 0.9, (0, 0, 10, 10)), det(0, 0.8, (1, 1, 11, 11))]
        assert len(non_max_suppression(dets, 0.45)) == 1

    def test_keeps_distinct_classes(self):
        dets = [det(0, 0.9, (0, 0, 10, 10)), det(1, 0.8, (0, 0, 10, 10))]
        assert len(non_max_suppression(dets, 0.45)) == 2

    def test_highest_score_kept(self):
        dets = [det(0, 0.5, (0, 0, 10, 10)), det(0, 0.9, (1, 1, 11, 11))]
        kept = non_max_suppression(dets, 0.3)
        assert kept[0].score == 0.9


class TestMeanIoU:
    def test_perfect(self):
        masks = np.array([[0, 1], [2, 1]])
        assert mean_iou(masks, masks, 3) == 1.0

    def test_absent_class_ignored(self):
        pred = np.array([[0, 0]])
        true = np.array([[0, 0]])
        assert mean_iou(pred, true, 4) == 1.0

    def test_partial(self):
        pred = np.array([0, 0, 1, 1])
        true = np.array([0, 1, 1, 1])
        # class0: inter 1 union 2; class1: inter 2 union 3
        assert mean_iou(pred, true, 2) == pytest.approx((0.5 + 2 / 3) / 2)
