"""Performance-model tests: work counting and the Table-4 latency shape."""

import numpy as np
import pytest

from repro.perfmodel import (
    DEVICES,
    PIXEL3_CPU,
    PIXEL4_CPU,
    PIXEL4_GPU,
    WORKSTATION,
    X86_EMULATOR,
    graph_work,
    node_work,
    total_macs,
)
from repro.perfmodel.work import OP_CLASS
from repro.util.errors import ReproError


class TestWorkCounting:
    def test_conv_macs_formula(self, small_cnn):
        node = small_cnn.node("stem")
        work = node_work(small_cnn, node, batch=1)
        # 4x4 output spatial x 3x3 kernel x 3 in x 8 out
        assert work.macs == 4 * 4 * 3 * 3 * 3 * 8

    def test_depthwise_macs(self, small_cnn):
        work = node_work(small_cnn, small_cnn.node("dw"), batch=1)
        assert work.macs == 4 * 4 * 3 * 3 * 8

    def test_dense_macs(self, small_cnn):
        work = node_work(small_cnn, small_cnn.node("logits"), batch=1)
        assert work.macs == 8 * 4

    def test_batch_scales_macs(self, small_cnn):
        w1 = node_work(small_cnn, small_cnn.node("stem"), batch=1)
        w4 = node_work(small_cnn, small_cnn.node("stem"), batch=4)
        assert w4.macs == 4 * w1.macs

    def test_elementwise_has_no_macs(self, small_cnn):
        work = node_work(small_cnn, small_cnn.node("res_add"), batch=1)
        assert work.macs == 0 and work.elements > 0

    def test_total_macs_sums(self, small_cnn):
        per_node = graph_work(small_cnn, batch=1)
        assert total_macs(small_cnn) == sum(w.macs for w in per_node.values())

    def test_every_op_classified(self):
        from repro.graph.node import OP_TYPES
        assert set(OP_TYPES) <= set(OP_CLASS)


class TestLatencyShape:
    """The relative orderings §4.5 / Table 4 report, encoded as invariants."""

    MACS = 1_000_000

    def lat(self, device, op, dtype, resolver):
        return device.layer_latency_ms(op, dtype, resolver, self.MACS, 10_000)

    def test_reference_conv_orders_of_magnitude_slower(self):
        opt = self.lat(PIXEL4_CPU, "conv", "int8", "optimized")
        ref = self.lat(PIXEL4_CPU, "conv", "int8", "reference")
        assert ref > 100 * opt

    def test_quantized_conv_slower_than_float_conv(self):
        f = self.lat(PIXEL4_CPU, "conv", "float", "optimized")
        q = self.lat(PIXEL4_CPU, "conv", "int8", "optimized")
        assert q > f  # Table 4(a): 32.3ms vs 23.5ms

    def test_quantized_dwconv_faster_than_float_dwconv(self):
        f = self.lat(PIXEL4_CPU, "dwconv", "float", "optimized")
        q = self.lat(PIXEL4_CPU, "dwconv", "int8", "optimized")
        assert q < f / 2  # Table 4(b): 22.7ms vs 95.4ms

    def test_fc_insensitive_to_resolver(self):
        opt = self.lat(PIXEL4_CPU, "fc", "int8", "optimized")
        ref = self.lat(PIXEL4_CPU, "fc", "int8", "reference")
        assert 0.8 < ref / opt < 1.2  # Table 4: 7.1 vs 7.0

    def test_x86_conv_much_slower_than_arm(self):
        arm = self.lat(PIXEL4_CPU, "conv", "float", "optimized")
        x86 = self.lat(X86_EMULATOR, "conv", "float", "optimized")
        assert x86 > 40 * arm  # §4.5(d): "44x slower on normal convolution"

    def test_x86_dwconv_comparable(self):
        arm = self.lat(PIXEL4_CPU, "dwconv", "float", "optimized")
        x86 = self.lat(X86_EMULATOR, "dwconv", "float", "optimized")
        assert x86 < 2 * arm  # Table 4: 120 vs 95.4

    def test_x86_mean_faster(self):
        arm = self.lat(PIXEL4_CPU, "mean", "float", "optimized")
        x86 = self.lat(X86_EMULATOR, "mean", "float", "optimized")
        assert x86 < arm  # Table 4: 2.5 vs 6.1

    def test_gpu_faster_than_cpu(self):
        cpu = self.lat(PIXEL4_CPU, "conv", "float", "optimized")
        gpu = self.lat(PIXEL4_GPU, "conv", "float", "optimized")
        assert gpu < cpu / 4  # Table 2: 16.7 vs 128.2 end-to-end

    def test_pixel3_slower_than_pixel4(self):
        p4 = self.lat(PIXEL4_CPU, "conv", "float", "optimized")
        p3 = self.lat(PIXEL3_CPU, "conv", "float", "optimized")
        assert 1.1 < p3 / p4 < 1.4  # Table 2: 157 vs 128

    def test_workstation_fastest(self):
        ws = self.lat(WORKSTATION, "conv", "float", "optimized")
        assert ws < self.lat(PIXEL4_GPU, "conv", "float", "optimized")


class TestDeviceContracts:
    def test_registry_complete(self):
        assert {"pixel4_cpu", "pixel4_gpu", "pixel3_cpu", "pixel3_gpu",
                "x86_emulator", "workstation"} <= set(DEVICES)

    def test_gpu_rejects_int8(self):
        assert not PIXEL4_GPU.supports("int8")
        with pytest.raises(ReproError):
            PIXEL4_GPU.layer_latency_ms("conv", "int8", "optimized", 10, 10)

    def test_invalid_dtype_class(self):
        with pytest.raises(ReproError):
            PIXEL4_CPU.layer_latency_ms("conv", "fp16", "optimized", 10, 10)

    def test_invalid_resolver_kind(self):
        with pytest.raises(ReproError):
            PIXEL4_CPU.layer_latency_ms("conv", "float", "fancy", 10, 10)

    def test_unknown_op_class_uses_default(self):
        ms = PIXEL4_CPU.layer_latency_ms("exotic", "float", "optimized", 100, 100)
        assert ms > 0

    def test_latency_monotonic_in_work(self):
        a = PIXEL4_CPU.layer_latency_ms("conv", "float", "optimized", 100, 0)
        b = PIXEL4_CPU.layer_latency_ms("conv", "float", "optimized", 10000, 0)
        assert b > a
