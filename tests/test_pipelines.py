"""Pipeline tests: EdgeApp, preprocess overrides, reference construction."""

import numpy as np
import pytest

from repro.instrument import EdgeMLMonitor
from repro.pipelines import (
    EdgeApp,
    ImagePreprocessConfig,
    build_reference_app,
    make_preprocess,
)
from repro.util.errors import ValidationError


IMAGE_META = {
    "task": "classification",
    "image_preprocess": ImagePreprocessConfig((8, 8)).to_json(),
}
SPEECH_META = {
    "task": "speech",
    "spectrogram": {"frame_len": 256, "hop": 125, "num_bins": 64},
    "spectrogram_normalization": "global_db",
}


class TestMakePreprocess:
    def test_image_default(self, rng):
        fn = make_preprocess(IMAGE_META)
        sensor = rng.integers(0, 255, (2, 32, 32, 3)).astype(np.uint8)
        out = fn(sensor)
        assert out.shape == (2, 8, 8, 3) and out.dtype == np.float32

    def test_image_override_injects_bug(self, rng):
        sensor = rng.integers(0, 255, (2, 32, 32, 3)).astype(np.uint8)
        base = make_preprocess(IMAGE_META)(sensor)
        bgr = make_preprocess(IMAGE_META, {"channel_order": "bgr"})(sensor)
        np.testing.assert_allclose(bgr, base[..., ::-1], atol=1e-6)

    def test_speech_pipeline(self, rng):
        fn = make_preprocess(SPEECH_META)
        waves = rng.normal(size=(3, 4000)).astype(np.float32)
        out = fn(waves)
        assert out.shape == (3, 30, 64, 1)

    def test_speech_normalization_override(self, rng):
        waves = rng.normal(size=(2, 4000)).astype(np.float32)
        a = make_preprocess(SPEECH_META)(waves)
        b = make_preprocess(SPEECH_META,
                            {"spectrogram_normalization": "per_utterance"})(waves)
        assert not np.allclose(a, b)

    def test_text_passthrough(self):
        ids = np.array([[1, 2, 3]])
        np.testing.assert_array_equal(
            make_preprocess({"task": "text"})(ids), ids)

    def test_unknown_task_rejected(self):
        with pytest.raises(ValidationError):
            make_preprocess({"task": "smelling"})

    # Regression: overrides used to be silently dropped when the key was
    # missing from the recorded recipe, and unknown keys were ignored —
    # bug-injection experiments could silently run the *correct* pipeline.
    def test_override_applies_when_absent_from_recorded_recipe(self, rng):
        sparse_meta = {
            "task": "classification",
            # Recorded before rotation_k existed: the field is absent.
            "image_preprocess": {
                "target_size": [8, 8], "resize_method": "area",
                "channel_order": "rgb", "normalization": "[-1,1]",
            },
        }
        sensor = rng.integers(0, 255, (2, 32, 32, 3)).astype(np.uint8)
        base = make_preprocess(sparse_meta)(sensor)
        rotated = make_preprocess(sparse_meta, {"rotation_k": 1})(sensor)
        assert not np.allclose(base, rotated)

    def test_unknown_image_override_rejected(self):
        with pytest.raises(ValidationError, match="chanel_order"):
            make_preprocess(IMAGE_META, {"chanel_order": "bgr"})

    def test_unknown_speech_override_rejected(self):
        with pytest.raises(ValidationError, match="unrecognized"):
            make_preprocess(SPEECH_META, {"normalization": "[0,1]"})

    def test_text_override_rejected(self):
        with pytest.raises(ValidationError, match="unrecognized"):
            make_preprocess({"task": "text"}, {"lowercase": True})

    def test_speech_spectrogram_param_override(self, rng):
        waves = rng.normal(size=(2, 4000)).astype(np.float32)
        base = make_preprocess(SPEECH_META)(waves)
        wider_hop = make_preprocess(SPEECH_META, {"hop": 250})(waves)
        assert wider_hop.shape[1] < base.shape[1]  # fewer frames


class TestEdgeApp:
    def make_graph_with_meta(self, small_cnn_mobile):
        small_cnn_mobile.metadata["pipeline"] = IMAGE_META
        return small_cnn_mobile

    def test_run_logs_default_telemetry(self, small_cnn_mobile, rng):
        graph = self.make_graph_with_meta(small_cnn_mobile)
        app = EdgeApp(graph, device=None)
        sensor = rng.integers(0, 255, (3, 32, 32, 3)).astype(np.uint8)
        outputs = app.run(sensor, labels=np.array([0, 1, 2]))
        assert outputs.shape == (3, 4)
        log = app.log()
        assert len(log) == 3
        assert log.frames[0].tensor("model_input").shape == (8, 8, 3)
        assert log.frames[0].tensor("model_output").shape == (4,)
        assert log.frames[2].scalars["label"] == 2.0
        assert "capture_ms" in log.frames[0].sensors

    def test_run_batched_matches_run(self, small_cnn_mobile, rng):
        graph = self.make_graph_with_meta(small_cnn_mobile)
        sensor = rng.integers(0, 255, (4, 32, 32, 3)).astype(np.uint8)
        a = EdgeApp(graph, device=None).run(sensor)
        b = EdgeApp(graph, device=None).run_batched(sensor)
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-6)

    def test_log_raw_keeps_sensor_frame(self, small_cnn_mobile, rng):
        graph = self.make_graph_with_meta(small_cnn_mobile)
        app = EdgeApp(graph, device=None)
        sensor = rng.integers(0, 255, (2, 32, 32, 3)).astype(np.uint8)
        app.run(sensor, log_raw=True)
        np.testing.assert_array_equal(
            app.log().frames[0].tensor("sensor_frame"), sensor[0])

    def test_device_latency_in_log(self, small_cnn_mobile, rng):
        from repro.perfmodel import PIXEL4_CPU
        graph = self.make_graph_with_meta(small_cnn_mobile)
        app = EdgeApp(graph, device=PIXEL4_CPU)
        sensor = rng.integers(0, 255, (2, 32, 32, 3)).astype(np.uint8)
        app.run(sensor)
        lats = [f.latency_ms for f in app.log().frames]
        assert lats[0] == pytest.approx(lats[1])  # deterministic cost model


class TestReferenceApp:
    def test_built_from_metadata(self, small_cnn_mobile, rng):
        small_cnn_mobile.metadata["pipeline"] = IMAGE_META
        ref = build_reference_app(small_cnn_mobile)
        assert ref.monitor.name == "reference"
        assert ref.monitor.per_layer
        sensor = rng.integers(0, 255, (2, 32, 32, 3)).astype(np.uint8)
        ref.run(sensor)
        assert ref.log().layer_names()

    def test_requires_metadata_or_custom(self, small_cnn):
        small_cnn.metadata.pop("pipeline", None)
        with pytest.raises(ValidationError):
            build_reference_app(small_cnn)

    def test_custom_preprocess_accepted(self, small_cnn, rng):
        ref = build_reference_app(
            small_cnn,
            preprocess=lambda s: ImagePreprocessConfig((8, 8)).apply(s))
        sensor = rng.integers(0, 255, (1, 16, 16, 3)).astype(np.uint8)
        ref.run(sensor)
        assert len(ref.log()) == 1
