"""Execution-plan tests: compilation, caching, staleness, seed parity.

The parity tests pin the refactor's contract: a plan-compiled interpreter
must be *bit-identical* to the seed (re-derive-per-call) interpreter in
outputs, profile, simulated latency, and peak-memory accounting — wall-clock
fields excepted, as they are measured, not computed.
"""

import numpy as np
import pytest

from repro.perfmodel import PIXEL4_CPU
from repro.runtime import (
    ExecutionPlan,
    Interpreter,
    OpResolver,
    compile_plan,
    node_is_quantized,
)


def strip_wall(profile):
    """Profile entries minus the measured wall_ms field."""
    return [{k: v for k, v in entry.items() if k != "wall_ms"}
            for entry in profile]


def assert_invoke_parity(graph, x, resolver_fn=OpResolver, device=PIXEL4_CPU):
    """Planned and unplanned interpreters must agree bit-for-bit."""
    planned = Interpreter(graph, resolver_fn(), device=device)
    unplanned = Interpreter(graph, resolver_fn(), device=device,
                            use_plan=False)
    out_p = planned.invoke(x)
    out_u = unplanned.invoke(x)
    assert sorted(out_p) == sorted(out_u)
    for name in out_p:
        np.testing.assert_array_equal(out_p[name], out_u[name])
    assert planned.last_latency_ms == unplanned.last_latency_ms
    assert planned.last_peak_activation_bytes == \
        unplanned.last_peak_activation_bytes
    assert strip_wall(planned.last_profile) == strip_wall(unplanned.last_profile)


class TestCompile:
    def test_bindings_cover_every_node(self, small_cnn):
        plan = compile_plan(small_cnn, OpResolver())
        assert len(plan) == len(small_cnn.nodes)
        assert [b.node.name for b in plan.bindings] == \
            [n.name for n in small_cnn.nodes]

    def test_quantized_flags_match_helper(self, small_cnn_quantized):
        plan = compile_plan(small_cnn_quantized, OpResolver())
        for binding in plan.bindings:
            assert binding.quantized == node_is_quantized(
                small_cnn_quantized, binding.node)

    def test_refcounts_match_consumer_counts(self, small_cnn):
        plan = compile_plan(small_cnn, OpResolver())
        for tensor, count in plan.initial_refcounts.items():
            consumers = sum(tensor in n.inputs for n in small_cnn.nodes)
            assert count == consumers

    def test_work_memoized(self, small_cnn):
        plan = compile_plan(small_cnn, OpResolver())
        assert plan.work(0, 4) is plan.work(0, 4)  # same cached object
        assert plan.work(0, 4) != plan.work(0, 8)  # batch-dependent

    def test_compiled_once_across_invokes(self, small_cnn, rng):
        resolver = OpResolver()
        lookups = []
        original = resolver.lookup
        resolver.lookup = lambda op, q: (lookups.append(op), original(op, q))[1]
        interp = Interpreter(small_cnn, resolver)
        x = rng.normal(size=(1, 8, 8, 3)).astype(np.float32)
        interp.invoke(x)
        after_first = len(lookups)
        interp.invoke(x)
        assert after_first == len(small_cnn.nodes)
        assert len(lookups) == after_first  # no lookups on the second invoke

    def test_plan_property_reuses_instance(self, small_cnn):
        interp = Interpreter(small_cnn)
        assert isinstance(interp.plan, ExecutionPlan)
        assert interp.plan is interp.plan


class TestStaleness:
    def test_register_after_invoke_recompiles(self, small_cnn, rng):
        resolver = OpResolver()
        interp = Interpreter(small_cnn, resolver)
        x = rng.normal(size=(1, 8, 8, 3)).astype(np.float32)
        interp.invoke(x)

        calls = []

        def spy_softmax(node, inputs, ctx):
            calls.append(node.name)
            from repro.kernels import softmax
            return softmax(inputs[0])

        resolver.register("softmax", False, spy_softmax)
        interp.invoke(x)
        assert calls == ["probs"]  # the late-registered kernel executed

    def test_stale_flag(self, small_cnn):
        resolver = OpResolver()
        plan = compile_plan(small_cnn, resolver)
        assert not plan.stale()
        resolver.register("softmax", False, lambda n, i, c: i[0])
        assert plan.stale()

    def test_resolver_swap_rebinds_plan_and_ctx(self, small_cnn, rng):
        # Regression: plan.stale() compares the *plan's* resolver version
        # to itself, so assigning a new resolver after construction was
        # never detected — the old kernels (and the old ExecContext) kept
        # executing. The resolver property must invalidate both.
        interp = Interpreter(small_cnn)
        x = rng.normal(size=(1, 8, 8, 3)).astype(np.float32)
        interp.invoke(x)
        old_plan = interp.plan

        calls = []
        replacement = OpResolver()

        def spy_softmax(node, inputs, ctx):
            calls.append(node.name)
            assert ctx.resolver is replacement  # ctx rebuilt for the swap
            from repro.kernels import softmax
            return softmax(inputs[0])

        replacement.register("softmax", False, spy_softmax)
        interp.resolver = replacement
        assert interp.resolver is replacement
        interp.invoke(x)
        assert calls == ["probs"]  # the swapped-in resolver's kernel ran
        assert interp.plan is not old_plan
        assert interp.plan.resolver is replacement


class TestSeedParity:
    def test_small_cnn_float(self, small_cnn_mobile, rng):
        x = rng.normal(size=(3, 8, 8, 3)).astype(np.float32)
        assert_invoke_parity(small_cnn_mobile, x)

    def test_small_cnn_quantized(self, small_cnn_quantized, rng):
        x = rng.normal(size=(3, 8, 8, 3)).astype(np.float32)
        assert_invoke_parity(small_cnn_quantized, x)

    def test_wall_clock_mode_outputs_match(self, small_cnn, rng):
        # No device: latency is wall-clock and cannot be compared, but
        # outputs and memory accounting still must match.
        x = rng.normal(size=(2, 8, 8, 3)).astype(np.float32)
        planned = Interpreter(small_cnn)
        unplanned = Interpreter(small_cnn, use_plan=False)
        np.testing.assert_array_equal(
            planned.invoke_single(x), unplanned.invoke_single(x))
        assert planned.last_peak_activation_bytes == \
            unplanned.last_peak_activation_bytes

    @pytest.mark.parametrize("stage", ["mobile", "quantized"])
    def test_zoo_model_parity(self, stage):
        from repro.zoo import eval_data, get_model
        graph = get_model("micro_mobilenet_v1", stage=stage)
        x, _ = eval_data("micro_mobilenet_v1", 4, "plan-parity")
        assert_invoke_parity(graph, np.asarray(x, dtype=np.float32))
