"""Preprocessing tests: resize math, channel ops, normalization, spectrogram."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipelines.preprocess import (
    NORMALIZATIONS,
    SPEC_NORMALIZATIONS,
    ImagePreprocessConfig,
    flip_horizontal,
    normalize,
    resize,
    rgb_to_bgr,
    rgb_to_yuv,
    rotate90,
    spectrogram,
    to_float,
    yuv_to_rgb,
)
from repro.util.errors import KernelError


class TestResize:
    def test_area_on_integer_factor_is_block_mean(self, rng):
        x = rng.uniform(size=(1, 8, 8, 1))
        got = resize(x, 4, 4, "area")
        want = x.reshape(1, 4, 2, 4, 2, 1).mean(axis=(2, 4))
        np.testing.assert_allclose(got, want, rtol=1e-10)

    @pytest.mark.parametrize("method", ["area", "bilinear", "nearest"])
    def test_constant_image_preserved(self, method):
        x = np.full((1, 10, 10, 3), 0.5)
        out = resize(x, 4, 4, method)
        np.testing.assert_allclose(out, 0.5, rtol=1e-9)

    @pytest.mark.parametrize("method", ["area", "bilinear", "nearest"])
    def test_range_preserved(self, rng, method):
        x = rng.uniform(size=(2, 9, 9, 3))
        out = resize(x, 5, 5, method)
        assert out.min() >= x.min() - 1e-9 and out.max() <= x.max() + 1e-9

    def test_bilinear_aliases_checkerboard_area_averages(self):
        """The §2 resize-bug mechanism: area-averaging flattens a period-2
        checkerboard while naive bilinear at 2.5:1 keeps alias energy."""
        yy, xx = np.meshgrid(np.arange(80), np.arange(80), indexing="ij")
        checker = (((yy // 2) + (xx // 2)) % 2).astype(np.float64)
        img = checker[None, :, :, None]
        area = resize(img, 32, 32, "area")
        bilinear = resize(img, 32, 32, "bilinear")
        assert bilinear.std() > 2 * area.std()

    def test_3d_input_accepted(self, rng):
        out = resize(rng.uniform(size=(8, 8, 3)), 4, 4)
        assert out.shape == (4, 4, 3)

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(KernelError):
            resize(rng.uniform(size=(1, 8, 8, 3)), 4, 4, "lanczos")

    def test_bad_rank_rejected(self, rng):
        with pytest.raises(KernelError):
            resize(rng.uniform(size=(8, 8)), 4, 4)


class TestChannels:
    def test_bgr_swap_is_involution(self, rng):
        x = rng.uniform(size=(2, 4, 4, 3))
        np.testing.assert_array_equal(rgb_to_bgr(rgb_to_bgr(x)), x)

    def test_bgr_swaps_r_and_b(self, rng):
        x = rng.uniform(size=(1, 2, 2, 3))
        out = rgb_to_bgr(x)
        np.testing.assert_array_equal(out[..., 0], x[..., 2])
        np.testing.assert_array_equal(out[..., 1], x[..., 1])

    def test_yuv_roundtrip(self, rng):
        x = rng.uniform(size=(2, 4, 4, 3))
        np.testing.assert_allclose(yuv_to_rgb(rgb_to_yuv(x)), x, atol=1e-10)

    def test_yuv_luma_of_white(self):
        white = np.ones((1, 1, 1, 3))
        yuv = rgb_to_yuv(white)
        # BT.601 published coefficients carry ~1e-5 rounding in the U row.
        np.testing.assert_allclose(yuv[..., 0], 1.0, atol=2e-5)
        np.testing.assert_allclose(yuv[..., 1:], 0.0, atol=2e-5)


class TestOrientation:
    def test_four_rotations_identity(self, rng):
        x = rng.uniform(size=(2, 4, 4, 3))
        out = x
        for _ in range(4):
            out = rotate90(out)
        np.testing.assert_array_equal(out, x)

    def test_flip_is_involution(self, rng):
        x = rng.uniform(size=(2, 4, 5, 3))
        np.testing.assert_array_equal(flip_horizontal(flip_horizontal(x)), x)

    def test_rotation_moves_corner(self):
        x = np.zeros((1, 3, 3, 1))
        x[0, 0, 0, 0] = 1.0
        out = rotate90(x, 1)
        assert out[0, 0, 0, 0] == 0.0 and out.sum() == 1.0


class TestNormalization:
    def test_minus_one_one(self):
        out = normalize(np.array([0.0, 0.5, 1.0]), "[-1,1]")
        np.testing.assert_allclose(out, [-1, 0, 1])

    def test_zero_one_identity(self):
        x = np.array([0.25, 0.75])
        np.testing.assert_array_equal(normalize(x, "[0,1]"), x)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KernelError):
            normalize(np.zeros(2), "[-2,2]")

    def test_to_float_range(self):
        out = to_float(np.array([0, 255], np.uint8))
        np.testing.assert_allclose(out, [0.0, 1.0])

    @given(st.sampled_from(sorted(NORMALIZATIONS)))
    @settings(max_examples=10, deadline=None)
    def test_schemes_affine(self, scheme):
        x = np.linspace(0, 1, 11)
        out = normalize(x, scheme)
        diffs = np.diff(out)
        np.testing.assert_allclose(diffs, diffs[0], rtol=1e-9)


class TestImagePreprocessConfig:
    def test_apply_shapes(self, rng):
        sensor = rng.integers(0, 255, (3, 80, 80, 3)).astype(np.uint8)
        cfg = ImagePreprocessConfig((32, 32))
        out = cfg.apply(sensor)
        assert out.shape == (3, 32, 32, 3) and out.dtype == np.float32
        assert -1.01 <= out.min() and out.max() <= 1.01

    def test_bgr_config_matches_manual(self, rng):
        sensor = rng.integers(0, 255, (2, 80, 80, 3)).astype(np.uint8)
        base = ImagePreprocessConfig((16, 16)).apply(sensor)
        bgr = ImagePreprocessConfig((16, 16), channel_order="bgr").apply(sensor)
        np.testing.assert_allclose(bgr, base[..., ::-1], atol=1e-6)

    def test_rotation_config(self, rng):
        sensor = rng.integers(0, 255, (1, 80, 80, 3)).astype(np.uint8)
        rot = ImagePreprocessConfig((16, 16), rotation_k=1).apply(sensor)
        base = ImagePreprocessConfig((16, 16)).apply(
            rotate90(sensor.astype(np.float64), 1).astype(np.uint8))
        np.testing.assert_allclose(rot, base, atol=1e-5)

    def test_json_roundtrip(self):
        cfg = ImagePreprocessConfig((24, 24), "bilinear", "bgr", "[0,1]", 2)
        restored = ImagePreprocessConfig.from_json(cfg.to_json())
        assert restored == cfg

    def test_unknown_channel_order_rejected(self, rng):
        sensor = rng.integers(0, 255, (1, 8, 8, 3)).astype(np.uint8)
        with pytest.raises(KernelError):
            ImagePreprocessConfig((4, 4), channel_order="gbr").apply(sensor)


class TestSpectrogram:
    def test_shape(self, rng):
        waves = rng.normal(size=(3, 4000)).astype(np.float32)
        spec = spectrogram(waves, frame_len=256, hop=125, num_bins=64)
        assert spec.shape == (3, 30, 64)

    def test_tone_peaks_at_right_bin(self):
        sr = 4000
        t = np.arange(sr) / sr
        tone = np.sin(2 * np.pi * 500 * t)[None, :]
        spec = spectrogram(tone, frame_len=256, hop=125, num_bins=64)
        peak_bin = spec.mean(axis=1).argmax()
        expected = int(500 * 256 / sr)
        assert abs(peak_bin - expected) <= 1

    def test_short_waveform_rejected(self, rng):
        # Regression: waveforms shorter than frame_len used to produce an
        # empty (N, 0, bins) feature tensor silently.
        waves = rng.normal(size=(2, 100)).astype(np.float32)
        with pytest.raises(KernelError, match="100.*256"):
            spectrogram(waves, frame_len=256, hop=125)

    def test_exact_frame_len_accepted(self, rng):
        spec = spectrogram(rng.normal(size=(1, 256)), frame_len=256, hop=125)
        assert spec.shape[1] == 1  # exactly one frame, not zero

    def test_global_db_bounded(self, rng):
        spec = spectrogram(rng.normal(size=(2, 4000)))
        out = SPEC_NORMALIZATIONS["global_db"].apply(spec)
        assert out.min() >= -1.0 and out.max() <= 1.0

    def test_per_utterance_standardizes(self, rng):
        spec = spectrogram(rng.normal(size=(2, 4000)))
        out = SPEC_NORMALIZATIONS["per_utterance"].apply(spec)
        np.testing.assert_allclose(out.mean(axis=(1, 2)), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=(1, 2)), 1.0, atol=1e-3)

    def test_conventions_differ(self, rng):
        """The Figure 4(c) bug: the two training pipelines' conventions
        produce materially different features for the same audio."""
        spec = spectrogram(rng.normal(size=(2, 4000)))
        a = SPEC_NORMALIZATIONS["global_db"].apply(spec)
        b = SPEC_NORMALIZATIONS["per_utterance"].apply(spec)
        assert np.abs(a - b).mean() > 0.1
