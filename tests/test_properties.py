"""Cross-cutting hypothesis property tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import conv2d, softmax
from repro.kernels.quantized.requant import (
    fused_activation_bounds,
    requantize,
    rescale_tensor,
    wrap_to_bits,
)
from repro.pipelines.preprocess import _resize_weights, resize
from repro.quantize import choose_qparams
from repro.util.rng import derive_rng


class TestResizeWeightProperties:
    @given(n_in=st.integers(4, 120), n_out=st.integers(2, 40),
           method=st.sampled_from(["area", "bilinear", "nearest"]))
    @settings(max_examples=60, deadline=None)
    def test_rows_are_stochastic(self, n_in, n_out, method):
        """Every resize row is a convex combination: weights sum to 1 and are
        non-negative — implies constant images stay constant and output range
        never exceeds input range."""
        w = _resize_weights(method, n_in, n_out)
        assert w.shape == (n_out, n_in)
        assert np.all(w >= -1e-12)
        np.testing.assert_allclose(w.sum(axis=1), 1.0, atol=1e-9)

    @given(n_in=st.integers(4, 60), factor=st.integers(2, 4))
    @settings(max_examples=30, deadline=None)
    def test_area_preserves_mean(self, n_in, factor):
        """Area-averaging an image preserves its mean when the output size
        divides the input size (exact box partition)."""
        n_in = (n_in // factor) * factor
        if n_in < factor:
            n_in = factor
        rng = derive_rng(0, "resize-mean", n_in, factor)
        img = rng.uniform(size=(1, n_in, n_in, 3))
        out = resize(img, n_in // factor, n_in // factor, "area")
        np.testing.assert_allclose(out.mean(), img.mean(), atol=1e-9)


class TestQuantizationProperties:
    @given(lo=st.floats(-50, -0.01), hi=st.floats(0.01, 50),
           q=st.integers(-128, 127))
    @settings(max_examples=80, deadline=None)
    def test_rescale_within_one_step(self, lo, hi, q):
        """Requantizing a tensor to a different parameterization moves each
        value by at most half of each scale step."""
        src = choose_qparams(lo, hi, "int8")
        dst = choose_qparams(lo * 1.7, hi * 1.3, "int8")
        arr = np.array([q], dtype=np.int8)
        out = rescale_tensor(arr, src, dst)
        real_src = src.dequantize(arr)[0]
        real_dst = dst.dequantize(out)[0]
        tolerance = src.scale.item() / 2 + dst.scale.item() / 2 + 1e-6
        assert abs(real_src - real_dst) <= tolerance

    @given(acc=st.floats(-1e6, 1e6), mult=st.floats(1e-4, 10))
    @settings(max_examples=80, deadline=None)
    def test_requantize_always_in_dtype_range(self, acc, mult):
        params = choose_qparams(-1.0, 1.0, "int8")
        q = requantize(np.array([acc]), np.float64(mult), params)
        assert -128 <= int(q[0]) <= 127

    @given(bits=st.integers(4, 20), value=st.integers(-(2**24), 2**24))
    @settings(max_examples=80, deadline=None)
    def test_wrap_to_bits_range_and_periodicity(self, bits, value):
        wrapped = wrap_to_bits(np.array([float(value)]), bits)[0]
        half = 2 ** (bits - 1)
        assert -half <= wrapped < half
        # Periodic with period 2^bits.
        again = wrap_to_bits(np.array([float(value + 2**bits)]), bits)[0]
        assert wrapped == again

    @given(activation=st.sampled_from(["linear", "relu", "relu6"]),
           lo=st.floats(-10, -0.1), hi=st.floats(0.1, 10))
    @settings(max_examples=40, deadline=None)
    def test_fused_bounds_ordered(self, activation, lo, hi):
        params = choose_qparams(lo, hi, "int8")
        bound_lo, bound_hi = fused_activation_bounds(activation, params)
        assert -128 <= bound_lo <= bound_hi <= 127


class TestKernelProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_conv_translation_covariance(self, seed):
        """Shifting a (periodically padded) input shifts a stride-1 valid
        convolution's output — the defining symmetry of convolution."""
        rng = derive_rng(seed, "conv-shift")
        x = rng.normal(size=(1, 8, 8, 2))
        w = rng.normal(size=(3, 3, 2, 3))
        rolled = np.roll(x, shift=1, axis=2)
        out = conv2d(x, w, padding="valid")
        out_rolled = conv2d(rolled, w, padding="valid")
        # Interior columns (unaffected by the wrap seam) must match.
        np.testing.assert_allclose(out_rolled[:, :, 1:-1], out[:, :, :-2],
                                   rtol=1e-5, atol=1e-6)

    @given(seed=st.integers(0, 10_000), scale=st.floats(0.1, 10))
    @settings(max_examples=25, deadline=None)
    def test_softmax_invariances(self, seed, scale):
        rng = derive_rng(seed, "softmax")
        x = rng.normal(size=(4, 6))
        s = softmax(x)
        assert np.all(s > 0)
        np.testing.assert_allclose(s.sum(axis=-1), 1.0, rtol=1e-6)
        np.testing.assert_allclose(softmax(x + 7.0), s, rtol=1e-5, atol=1e-7)
        # Order-preserving along the axis.
        assert np.array_equal(np.argsort(x, axis=-1), np.argsort(s, axis=-1))


class TestArchSignatureProperties:
    @given(st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_signature_injective_on_width(self, width):
        from repro.zoo.arch import arch_signature, conv, dense, gap, softmax as sm
        arch_a = [conv("stem", width), gap(), dense("logits", 4), sm()]
        arch_b = [conv("stem", width + 1), gap(), dense("logits", 4), sm()]
        assert arch_signature(arch_a) != arch_signature(arch_b)


class TestMonitorLogRoundTripProperty:
    @given(n_frames=st.integers(1, 6), tensor_dim=st.integers(1, 8),
           seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_save_load_identity(self, tmp_path_factory, n_frames, tensor_dim,
                                seed):
        from repro.instrument import EXrayLog, EdgeMLMonitor, save_log
        rng = derive_rng(seed, "logprop")
        monitor = EdgeMLMonitor("p")
        for i in range(n_frames):
            monitor.on_inf_start()
            monitor.log("t", rng.normal(size=tensor_dim).astype(np.float32))
            monitor.log("s", float(rng.normal()))
            monitor.on_inf_stop()
        root = tmp_path_factory.mktemp("log")
        save_log(monitor, root)
        loaded = EXrayLog.load(root)
        assert len(loaded) == n_frames
        for orig, restored in zip(monitor.frames, loaded.frames):
            np.testing.assert_array_equal(orig.tensors["t"],
                                          restored.tensors["t"])
            assert orig.scalars["s"] == restored.scalars["s"]
