"""Quantization parameter and calibration tests, incl. hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantize import (
    QuantParams,
    RangeObserver,
    choose_qparams,
    choose_qparams_per_channel,
    dtype_range,
)
from repro.util.errors import QuantizationError


class TestDtypeRange:
    def test_int8(self):
        assert dtype_range("int8") == (-128, 127)

    def test_uint8(self):
        assert dtype_range("uint8") == (0, 255)

    def test_unknown(self):
        with pytest.raises(QuantizationError):
            dtype_range("float8")


class TestQuantParams:
    def test_roundtrip_exact_grid(self):
        params = choose_qparams(-1.0, 1.0, "int8")
        grid = params.dequantize(np.arange(-128, 128, dtype=np.int8))
        requant = params.quantize(grid)
        np.testing.assert_array_equal(requant, np.arange(-128, 128, dtype=np.int8))

    def test_zero_exactly_representable(self):
        params = choose_qparams(0.3, 2.0, "int8")  # range extended to include 0
        q = params.quantize(np.array([0.0]))
        np.testing.assert_allclose(params.dequantize(q), 0.0, atol=1e-12)

    def test_saturates(self):
        params = choose_qparams(-1.0, 1.0, "int8")
        q = params.quantize(np.array([100.0, -100.0]))
        assert q[0] == 127 and q[1] == -128

    def test_symmetric_zero_point_is_zero(self):
        params = choose_qparams(-3.0, 1.0, "int8", symmetric=True)
        assert params.zero_point.item() == 0

    def test_invalid_scale_rejected(self):
        with pytest.raises(QuantizationError):
            QuantParams(np.float64(-1.0), np.int64(0), "int8")

    def test_zero_point_out_of_range_rejected(self):
        with pytest.raises(QuantizationError):
            QuantParams(np.float64(0.1), np.int64(300), "int8")

    def test_per_tensor_multi_scale_rejected(self):
        with pytest.raises(QuantizationError):
            QuantParams(np.array([0.1, 0.2]), np.array([0, 0]), "int8", axis=None)

    def test_json_roundtrip(self):
        params = choose_qparams(-0.7, 1.9, "uint8")
        restored = QuantParams.from_json(params.to_json())
        np.testing.assert_array_equal(restored.scale, params.scale)
        np.testing.assert_array_equal(restored.zero_point, params.zero_point)
        assert restored.dtype == params.dtype

    def test_degenerate_range(self):
        params = choose_qparams(0.0, 0.0, "int8")
        q = params.quantize(np.array([0.0]))
        np.testing.assert_allclose(params.dequantize(q), 0.0, atol=1e-9)

    def test_invalid_range_rejected(self):
        with pytest.raises(QuantizationError):
            choose_qparams(2.0, 1.0)


class TestQuantizationErrorBound:
    @given(
        lo=st.floats(-100, 0, allow_nan=False),
        span=st.floats(0.01, 200, allow_nan=False),
        values=st.lists(st.floats(0, 1), min_size=1, max_size=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_error_at_most_half_scale(self, lo, span, values):
        """|x - dequant(quant(x))| <= scale/2 for in-range x (the defining
        property of round-to-nearest affine quantization)."""
        hi = lo + span
        params = choose_qparams(lo, hi, "int8")
        lo_eff, hi_eff = min(lo, 0.0), max(hi, 0.0)
        x = np.array(values) * (hi_eff - lo_eff) + lo_eff
        err = np.abs(params.dequantize(params.quantize(x)).astype(np.float64) - x)
        # scale/2 from rounding, plus float32 representation error on the
        # dequantized values.
        bound = params.scale.item() / 2 + np.abs(x).max() * 1e-6 + 1e-9
        assert err.max() <= bound

    @given(st.integers(-128, 127))
    @settings(max_examples=50, deadline=None)
    def test_quantize_is_idempotent_on_grid(self, q):
        params = choose_qparams(-2.0, 3.0, "int8")
        x = params.dequantize(np.array([q], dtype=np.int8))
        assert params.quantize(x)[0] == q


class TestPerChannel:
    def test_scales_match_channel_maxima(self, rng):
        w = rng.normal(size=(3, 3, 2, 4))
        w[..., 2] *= 100
        params = choose_qparams_per_channel(w, axis=3)
        assert params.per_channel and params.scale.shape == (4,)
        assert params.scale[2] > 10 * params.scale[0]

    def test_per_channel_roundtrip_beats_per_tensor_on_skew(self, rng):
        """The §2 motivation: per-tensor squashes small-scale channels."""
        w = rng.normal(size=(3, 3, 4, 2))
        w[..., 1] *= 1000
        pc = choose_qparams_per_channel(w, axis=3)
        bound = float(np.abs(w).max())
        pt = choose_qparams(-bound, bound, "int8", symmetric=True)
        err_pc = np.abs(pc.dequantize(pc.quantize(w)) - w)[..., 0].max()
        err_pt = np.abs(pt.dequantize(pt.quantize(w)) - w)[..., 0].max()
        assert err_pc < err_pt / 10

    def test_bad_axis_rejected(self, rng):
        with pytest.raises(QuantizationError):
            choose_qparams_per_channel(rng.normal(size=(2, 2)), axis=5)


class TestRangeObserver:
    def test_minmax_tracks_extremes(self):
        obs = RangeObserver("minmax")
        obs.observe(np.array([1.0, 2.0]))
        obs.observe(np.array([-3.0, 0.5]))
        assert obs.range() == (-3.0, 2.0)

    def test_empty_observer_rejects(self):
        with pytest.raises(QuantizationError):
            RangeObserver().range()

    def test_percentile_clips_outliers(self, rng):
        obs = RangeObserver("percentile", percentile=99.0)
        data = rng.normal(size=50_000)
        data[0] = 1e6  # a single wild outlier
        obs.observe(data)
        lo, hi = obs.range()
        assert hi < 10  # outlier clipped away
        mm = RangeObserver("minmax")
        mm.observe(data)
        assert mm.range()[1] == 1e6  # minmax keeps it (the §2 failure mode)

    def test_qparams_from_observer(self):
        obs = RangeObserver()
        obs.observe(np.linspace(-1, 1, 100))
        params = obs.qparams("int8")
        assert abs(params.scale.item() - 2 / 255) < 1e-6

    def test_unknown_mode_rejected(self):
        with pytest.raises(QuantizationError):
            RangeObserver("fancy")
