"""Integer kernel tests: fidelity to float, opt/ref bit-equality, bug flags."""

import numpy as np
import pytest

from repro import kernels as K
from repro.kernels.quantized import (
    NO_BUGS,
    PAPER_OPTIMIZED_BUGS,
    PAPER_REFERENCE_BUGS,
    KernelBugs,
    apply_lut,
    build_lut,
    fused_activation_bounds,
    optimized as qopt,
    reference as qref,
    requantize,
    rescale_tensor,
    wrap_to_bits,
)
from repro.quantize import choose_qparams, choose_qparams_per_channel


def qpair(rng, shape, lo=-1.0, hi=1.0):
    """A float tensor plus its int8 quantization."""
    x = rng.uniform(lo, hi, shape)
    params = choose_qparams(lo, hi, "int8")
    return x, params.quantize(x), params


class TestRequantHelpers:
    def test_wrap_to_bits_identity_in_range(self):
        acc = np.array([100.0, -100.0])
        np.testing.assert_array_equal(wrap_to_bits(acc, 16), acc)

    def test_wrap_to_bits_wraps(self):
        assert wrap_to_bits(np.array([32768.0]), 16)[0] == -32768
        assert wrap_to_bits(np.array([-32769.0]), 16)[0] == 32767

    def test_wrap_narrower_bits(self):
        assert wrap_to_bits(np.array([4096.0]), 13)[0] == -4096

    def test_fused_relu_bounds(self):
        params = choose_qparams(-1.0, 1.0, "int8")
        lo, hi = fused_activation_bounds("relu", params)
        assert lo == int(params.zero_point.item()) and hi == 127

    def test_fused_relu6_bounds(self):
        params = choose_qparams(0.0, 6.0, "int8")
        lo, hi = fused_activation_bounds("relu6", params)
        assert lo == -128 and hi == 127

    def test_fused_unknown_rejected(self):
        params = choose_qparams(-1.0, 1.0, "int8")
        with pytest.raises(ValueError):
            fused_activation_bounds("hard_swish", params)

    def test_requantize_clips_to_dtype(self):
        out_p = choose_qparams(-1.0, 1.0, "int8")
        q = requantize(np.array([1e9, -1e9]), np.float64(1.0), out_p)
        assert q[0] == 127 and q[1] == -128

    def test_rescale_tensor_identity(self):
        p = choose_qparams(-1.0, 1.0, "int8")
        q = np.array([-128, 0, 127], dtype=np.int8)
        np.testing.assert_array_equal(rescale_tensor(q, p, p), q)


class TestLUT:
    def test_lut_matches_float_detour(self, rng):
        in_p = choose_qparams(-4.0, 4.0, "int8")
        out_p = choose_qparams(-1.0, 1.0, "int8")
        lut = build_lut(K.tanh, in_p, out_p)
        q = rng.integers(-128, 128, size=50).astype(np.int8)
        got = apply_lut(q, lut, in_p)
        want = out_p.quantize(np.tanh(in_p.dequantize(q)))
        np.testing.assert_array_equal(got, want)

    def test_lut_covers_full_domain(self):
        in_p = choose_qparams(-1.0, 1.0, "int8")
        lut = build_lut(K.relu, in_p, in_p)
        assert lut.shape == (256,)


class TestQConv2d:
    def test_close_to_float(self, rng):
        x, x_q, in_p = qpair(rng, (2, 6, 6, 3))
        w = rng.normal(0, 0.3, (3, 3, 3, 4))
        w_p = choose_qparams_per_channel(w, axis=3)
        w_q = w_p.quantize(w)
        float_out = K.conv2d(x, w)
        out_p = choose_qparams(float_out.min(), float_out.max(), "int8")
        got = out_p.dequantize(qopt.qconv2d(x_q, in_p, w_q, w_p, None, out_p))
        # Error bounded by a few output quantization steps.
        assert np.abs(got - float_out).max() < 6 * out_p.scale.item()

    @pytest.mark.parametrize("stride,padding", [(1, "same"), (2, "same"),
                                                (1, "valid")])
    def test_optimized_equals_reference(self, rng, stride, padding):
        x, x_q, in_p = qpair(rng, (2, 7, 7, 3))
        w = rng.normal(0, 0.3, (3, 3, 3, 5))
        w_p = choose_qparams_per_channel(w, axis=3)
        w_q = w_p.quantize(w)
        bias_q = rng.integers(-50, 50, 5).astype(np.int32)
        out_p = choose_qparams(-2.0, 2.0, "int8")
        a = qopt.qconv2d(x_q, in_p, w_q, w_p, bias_q, out_p, stride, padding, "relu")
        b = qref.qconv2d(x_q, in_p, w_q, w_p, bias_q, out_p, stride, padding, "relu")
        np.testing.assert_array_equal(a, b)


class TestQDepthwise:
    def test_optimized_equals_reference_when_correct(self, rng):
        x, x_q, in_p = qpair(rng, (2, 6, 6, 4))
        w = rng.normal(0, 0.3, (3, 3, 4, 1))
        w_p = choose_qparams_per_channel(w, axis=2)
        w_q = w_p.quantize(w)
        out_p = choose_qparams(-2.0, 2.0, "int8")
        a = qopt.qdepthwise_conv2d(x_q, in_p, w_q, w_p, None, out_p)
        b = qref.qdepthwise_conv2d(x_q, in_p, w_q, w_p, None, out_p)
        np.testing.assert_array_equal(a, b)

    def test_overflow_bug_only_affects_optimized(self, rng):
        """The §4.4 signature: optimized and reference kernels diverge ONLY
        when the injected overflow bug is active."""
        x, x_q, in_p = qpair(rng, (1, 6, 6, 4), 0.0, 6.0)
        w = rng.normal(0, 0.5, (3, 3, 4, 1))
        w_p = choose_qparams_per_channel(w, axis=2)
        w_q = w_p.quantize(w)
        out_p = choose_qparams(-6.0, 6.0, "int8")
        clean = qopt.qdepthwise_conv2d(x_q, in_p, w_q, w_p, None, out_p)
        buggy = qopt.qdepthwise_conv2d(x_q, in_p, w_q, w_p, None, out_p,
                                       bugs=PAPER_OPTIMIZED_BUGS)
        ref = qref.qdepthwise_conv2d(x_q, in_p, w_q, w_p, None, out_p,
                                     bugs=PAPER_OPTIMIZED_BUGS)
        assert not np.array_equal(clean, buggy)
        np.testing.assert_array_equal(clean, ref)  # ref kernel immune


class TestQDense:
    def test_optimized_equals_reference(self, rng):
        x, x_q, in_p = qpair(rng, (4, 10))
        w = rng.normal(0, 0.3, (10, 6))
        w_p = choose_qparams_per_channel(w, axis=1)
        w_q = w_p.quantize(w)
        out_p = choose_qparams(-4.0, 4.0, "int8")
        a = qopt.qdense(x_q, in_p, w_q, w_p, None, out_p)
        b = qref.qdense(x_q, in_p, w_q, w_p, None, out_p)
        np.testing.assert_array_equal(a, b)

    def test_close_to_float(self, rng):
        x, x_q, in_p = qpair(rng, (4, 10))
        w = rng.normal(0, 0.3, (10, 6))
        w_p = choose_qparams_per_channel(w, axis=1)
        float_out = x @ w
        out_p = choose_qparams(float_out.min(), float_out.max(), "int8")
        got = out_p.dequantize(qopt.qdense(x_q, in_p, w_p.quantize(w), w_p,
                                           None, out_p))
        assert np.abs(got - float_out).max() < 6 * out_p.scale.item()


class TestQPooling:
    def test_avg_pool_close_to_float(self, rng):
        x, x_q, in_p = qpair(rng, (1, 6, 6, 2), 0.0, 6.0)
        out_p = in_p
        got = out_p.dequantize(qopt.qavg_pool2d(x_q, in_p, out_p, 2))
        want = K.avg_pool2d(x, 2)
        assert np.abs(got - want).max() < 3 * out_p.scale.item()

    def test_avgpool_zero_point_bug_saturates_full_extent_pool(self, rng):
        x, x_q, in_p = qpair(rng, (1, 4, 4, 2), 0.0, 6.0)  # zp = -128
        out_p = in_p
        buggy = qopt.qavg_pool2d(x_q, in_p, out_p, pool_size=(4, 4),
                                 bugs=PAPER_REFERENCE_BUGS)
        assert buggy.shape[1:3] == (1, 1)
        assert np.all(buggy == out_p.qmax)  # pinned at qmax: constant output

    def test_avgpool_bug_skips_windowed_pools(self, rng):
        """Only full-extent (1x1-output) pools carry the bug — Inception's
        3x3 branch pools and DenseNet transitions are unaffected (§4.4)."""
        x, x_q, in_p = qpair(rng, (1, 4, 4, 2), 0.0, 6.0)
        clean = qopt.qavg_pool2d(x_q, in_p, in_p, pool_size=2)
        buggy = qopt.qavg_pool2d(x_q, in_p, in_p, pool_size=2,
                                 bugs=PAPER_REFERENCE_BUGS)
        np.testing.assert_array_equal(clean, buggy)

    def test_avgpool_bug_skips_mean_op(self, rng):
        """The Mean op (v1/v2 global pooling) has a separate correct kernel."""
        x, x_q, in_p = qpair(rng, (1, 4, 4, 2), 0.0, 6.0)
        a = qopt.qglobal_avg_pool(x_q, in_p, in_p)
        b = qopt.qglobal_avg_pool(x_q, in_p, in_p, bugs=PAPER_REFERENCE_BUGS)
        np.testing.assert_array_equal(a, b)

    def test_avgpool_bug_off_by_default(self, rng):
        x, x_q, in_p = qpair(rng, (1, 4, 4, 2), 0.0, 6.0)
        a = qopt.qglobal_avg_pool(x_q, in_p, in_p)
        b = qopt.qglobal_avg_pool(x_q, in_p, in_p, bugs=NO_BUGS)
        np.testing.assert_array_equal(a, b)

    def test_max_pool_commutes_with_quantization(self, rng):
        x, x_q, in_p = qpair(rng, (1, 4, 4, 1))
        got = qopt.qmax_pool2d(x_q, in_p, in_p, 2)
        want = in_p.quantize(K.max_pool2d(in_p.dequantize(x_q), 2))
        np.testing.assert_array_equal(got, want)


class TestQElementwise:
    def test_qadd_close_to_float(self, rng):
        a, a_q, a_p = qpair(rng, (3, 4), -1, 1)
        b, b_q, b_p = qpair(rng, (3, 4), -2, 2)
        out_p = choose_qparams(-3.0, 3.0, "int8")
        got = out_p.dequantize(qopt.qadd(a_q, a_p, b_q, b_p, out_p))
        want = a_p.dequantize(a_q) + b_p.dequantize(b_q)
        assert np.abs(got - want).max() <= out_p.scale.item()

    def test_qmul_close_to_float(self, rng):
        a, a_q, a_p = qpair(rng, (3, 4), -1, 1)
        b, b_q, b_p = qpair(rng, (3, 4), 0, 1)
        out_p = choose_qparams(-1.0, 1.0, "int8")
        got = out_p.dequantize(qopt.qmul(a_q, a_p, b_q, b_p, out_p))
        want = a_p.dequantize(a_q) * b_p.dequantize(b_q)
        assert np.abs(got - want).max() <= out_p.scale.item()

    def test_qpad_fills_zero_point(self, rng):
        _, x_q, in_p = qpair(rng, (1, 2, 2, 1), 0.0, 6.0)
        out = qopt.qpad2d(x_q, in_p, ((1, 1), (1, 1)))
        assert out[0, 0, 0, 0] == in_p.zero_point.item()

    def test_qpad_bug_fills_literal_zero(self, rng):
        _, x_q, in_p = qpair(rng, (1, 2, 2, 1), 0.0, 6.0)
        out = qopt.qpad2d(x_q, in_p, ((1, 1), (1, 1)),
                          bugs=KernelBugs(pad_ignores_zero_point=True))
        assert out[0, 0, 0, 0] == 0
        assert in_p.zero_point.item() != 0  # the bug is observable


class TestKernelBugsConfig:
    def test_defaults_off(self):
        assert not NO_BUGS.any()

    def test_paper_configs_on(self):
        assert PAPER_OPTIMIZED_BUGS.any()
        assert PAPER_REFERENCE_BUGS.any()
        assert PAPER_OPTIMIZED_BUGS.dwconv_accumulator_bits is not None
        assert PAPER_REFERENCE_BUGS.avgpool_zero_point_bug

    def test_with_override(self):
        bugs = NO_BUGS.with_(pad_ignores_zero_point=True)
        assert bugs.pad_ignores_zero_point and not NO_BUGS.pad_ignores_zero_point
