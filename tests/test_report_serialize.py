"""Round-trip tests for the versioned sweep-report serialization layer.

Every document is pushed through ``json.dumps``/``json.loads`` — the wire —
before rebuilding, so these tests pin the actual cross-machine behavior
(exact float round-tripping included), not just dict plumbing.
"""

import json

import pytest

from repro.util.errors import ValidationError
from repro.validate.accuracy import AccuracyReport
from repro.validate.assertions import AssertionResult, jsonable_details
from repro.validate.fingerprint import DriftFingerprint, fingerprint_report
from repro.validate.layerdiff import LayerDiff
from repro.validate.reporting import (
    REPORT_SCHEMA_VERSION,
    SweepReport,
    VariantResult,
)
from repro.validate.session import ValidationReport
from repro.validate.sweep import run_sweep
from repro.validate.triage import TriageReport, triage_sweep
from repro.validate.variants import SweepVariant

MODEL = "micro_mobilenet_v1"


def wire(doc):
    """Push a document through actual JSON bytes."""
    return json.loads(json.dumps(doc))


@pytest.fixture(scope="module")
def sweep_report():
    report = run_sweep(
        MODEL,
        [SweepVariant("clean"),
         SweepVariant("rot90", {"rotation_k": 1})],
        frames=8, executor="serial")
    report.triage = triage_sweep(report)
    return report


class TestVariantRoundTrip:
    @pytest.mark.parametrize("variant", [
        SweepVariant("clean"),
        SweepVariant("bgr", {"channel_order": "bgr"}),
        SweepVariant("sized", {"target_size": [16, 16], "rotation_k": 2}),
        SweepVariant("norm", {"normalization": "[0,1]"}),
        SweepVariant("buggy", kernel_bugs="paper-optimized",
                     stage="quantized", resolver="reference",
                     device="pixel3_cpu"),
    ])
    def test_manifest_json_round_trip_is_identity(self, variant):
        assert SweepVariant.from_doc(wire(variant.to_doc())) == variant

    def test_malformed_doc_named_error(self):
        with pytest.raises(ValidationError, match="malformed variant"):
            SweepVariant.from_doc({"overrides": {}})


class TestLeafDocs:
    def test_accuracy_report_round_trip(self):
        report = AccuracyReport(edge_metric=0.123456789012345,
                                ref_metric=0.987654321098765,
                                tolerance=0.02, metric_name="mAP")
        assert AccuracyReport.from_doc(wire(report.to_doc())) == report

    def test_layer_diff_round_trip(self):
        diff = LayerDiff(index=3, layer="dw_bn", op="depthwise_conv2d",
                         error=0.12345678901234567, degenerate_ref=True)
        assert LayerDiff.from_doc(wire(diff.to_doc())) == diff

    def test_assertion_result_round_trip(self):
        result = AssertionResult("orientation", False, "rotated",
                                 {"fix": "rotate back", "k": 3})
        assert AssertionResult.from_doc(wire(result.to_doc())) == result

    def test_assertion_details_canonicalized(self):
        import numpy as np

        details = {"per_rotation_mse": {0: np.float64(0.5), 1: 2},
                   "arr": np.arange(3), "flag": True, "none": None}
        canon = jsonable_details(details)
        assert canon == {"per_rotation_mse": {"0": 0.5, "1": 2},
                         "arr": [0.0, 1.0, 2.0], "flag": True, "none": None}
        # The canonical form is a JSON fixpoint.
        assert wire(canon) == canon

    def test_fingerprint_round_trip(self):
        fp = DriftFingerprint(
            variant="rot90",
            schedule=(("stem", "conv2d"), ("dw", "depthwise_conv2d")),
            drift=(0.0123456789, 0.9876543210987),
            first_flagged=1, flagged=(1,),
            failed_checks=frozenset({"orientation"}),
            degenerate=frozenset({0}),
            accuracy_degraded=True)
        assert DriftFingerprint.from_doc(wire(fp.to_doc())) == fp


class TestExecutedReportRoundTrip:
    def test_variant_results_round_trip(self, sweep_report):
        for original in sweep_report.results:
            rebuilt = VariantResult.from_doc(wire(original.to_doc()))
            assert rebuilt.variant == original.variant
            assert rebuilt.status == original.status
            assert rebuilt.mean_latency_ms == original.mean_latency_ms
            assert rebuilt.peak_memory_mb == original.peak_memory_mb
            assert rebuilt.report.render() == original.report.render()
            assert rebuilt.verdict() == original.verdict()

    def test_healthy_result_is_exactly_equal(self, sweep_report):
        original = sweep_report.result("clean")
        assert VariantResult.from_doc(wire(original.to_doc())) == original

    def test_result_doc_is_a_json_fixpoint(self, sweep_report):
        # Evidence dicts may canonicalize (int keys -> strings) on the
        # first serialization; after that the doc round-trips exactly.
        doc = wire(sweep_report.result("rot90").to_doc())
        assert VariantResult.from_doc(doc).to_doc() == doc

    def test_validation_report_drift_views_survive(self, sweep_report):
        original = sweep_report.result("rot90").report
        rebuilt = ValidationReport.from_doc(wire(original.to_doc()))
        assert rebuilt.layer_schedule() == original.layer_schedule()
        assert list(rebuilt.drift_vector()) == list(original.drift_vector())
        assert rebuilt.first_flagged_index == original.first_flagged_index
        assert rebuilt.degenerate_indices == original.degenerate_indices
        assert rebuilt.failed_checks == original.failed_checks
        # Rebuilt flagged layers are views of the rebuilt diffs list.
        for diff in rebuilt.flagged_layers:
            assert any(d is diff for d in rebuilt.layer_diffs)

    def test_fingerprints_from_rebuilt_reports_are_identical(
            self, sweep_report):
        for result in sweep_report.results:
            rebuilt = ValidationReport.from_doc(wire(result.report.to_doc()))
            assert fingerprint_report(result.variant.name, rebuilt) == \
                fingerprint_report(result.variant.name, result.report)

    def test_sweep_report_round_trip_renders_identically(self, sweep_report):
        doc = wire(sweep_report.to_doc())
        assert doc["schema_version"] == REPORT_SCHEMA_VERSION
        rebuilt = SweepReport.from_doc(doc)
        assert rebuilt.render(verbose=True) == \
            sweep_report.render(verbose=True)
        assert rebuilt.healthy == sweep_report.healthy

    def test_triage_report_round_trip(self, sweep_report):
        rebuilt = TriageReport.from_doc(wire(sweep_report.triage.to_doc()))
        assert rebuilt.render() == sweep_report.triage.render()
        assert [c.cause for c in rebuilt.clusters] == \
            [c.cause for c in sweep_report.triage.clusters]


class TestSchemaGuards:
    def test_unknown_report_version_rejected(self, sweep_report):
        doc = sweep_report.to_doc()
        doc["schema_version"] = 99
        with pytest.raises(ValidationError, match="schema version"):
            SweepReport.from_doc(doc)

    def test_missing_version_rejected(self):
        with pytest.raises(ValidationError, match="schema version"):
            SweepReport.from_doc({"model": "m", "frames": 4, "results": []})

    def test_malformed_report_named_error(self):
        with pytest.raises(ValidationError, match="malformed sweep-report"):
            SweepReport.from_doc(
                {"schema_version": REPORT_SCHEMA_VERSION, "frames": 4})

    @pytest.mark.parametrize("position", [-1, 1, 7])
    def test_out_of_range_flagged_position_rejected(self, sweep_report,
                                                    position):
        # Negative positions must not silently alias the last diff via
        # Python indexing — a corrupt doc is quarantined, not misread.
        doc = sweep_report.result("rot90").report.to_doc()
        doc["layer_diffs"] = doc["layer_diffs"][:1]
        doc["flagged"] = [position]
        with pytest.raises(ValidationError, match="flagged"):
            ValidationReport.from_doc(doc)
