"""Unit tests for util.retry: schedules, fake-clock backoff, error routing.

No test here sleeps for real — the whole point of the injectable
``sleep``/``rng`` seams is that retry policies are verifiable as pure
schedules.
"""

import random

import pytest

from repro.util.errors import KernelError, ValidationError
from repro.util.retry import backoff_delays, with_retries


class FakeClock:
    """Records every requested sleep instead of waiting."""

    def __init__(self):
        self.sleeps = []

    def sleep(self, seconds):
        self.sleeps.append(seconds)


class Flaky:
    """Fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures, value="ok", exc=ConnectionError):
        self.failures = failures
        self.value = value
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"transient #{self.calls}")
        return self.value


class TestBackoffDelays:
    def test_exponential_growth_without_jitter(self):
        assert backoff_delays(5, base_delay=1.0, jitter=0.0,
                              max_delay=100.0) == [1.0, 2.0, 4.0, 8.0]

    def test_capped_at_max_delay(self):
        delays = backoff_delays(6, base_delay=1.0, jitter=0.0, max_delay=3.0)
        assert delays == [1.0, 2.0, 3.0, 3.0, 3.0]

    def test_one_attempt_means_no_delays(self):
        assert backoff_delays(1) == []

    def test_jitter_stretches_within_ratio(self):
        rng = random.Random(7)
        delays = backoff_delays(40, base_delay=1.0, jitter=0.5,
                                max_delay=1.0, rng=rng)
        assert all(1.0 <= d <= 1.5 for d in delays)
        assert len(set(delays)) > 1  # actually jittered, not constant

    def test_deterministic_with_seeded_rng(self):
        a = backoff_delays(5, rng=random.Random(3))
        b = backoff_delays(5, rng=random.Random(3))
        assert a == b

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            backoff_delays(0)
        with pytest.raises(ValidationError):
            backoff_delays(3, base_delay=-1.0)


class TestWithRetries:
    def test_success_first_try_never_sleeps(self):
        clock = FakeClock()
        assert with_retries(lambda: 42, sleep=clock.sleep) == 42
        assert clock.sleeps == []

    def test_retries_then_succeeds(self):
        clock = FakeClock()
        fn = Flaky(failures=2)
        result = with_retries(fn, attempts=4, base_delay=1.0, jitter=0.0,
                              retry_on=ConnectionError, sleep=clock.sleep)
        assert result == "ok"
        assert fn.calls == 3
        assert clock.sleeps == [1.0, 2.0]  # exponential, one per failure

    def test_budget_exhausted_reraises_last_error(self):
        clock = FakeClock()
        fn = Flaky(failures=10)
        with pytest.raises(ConnectionError, match="transient #3"):
            with_retries(fn, attempts=3, base_delay=0.5, jitter=0.0,
                         retry_on=ConnectionError, sleep=clock.sleep)
        assert fn.calls == 3
        assert clock.sleeps == [0.5, 1.0]  # no sleep after the final failure

    def test_non_matching_exception_propagates_immediately(self):
        clock = FakeClock()
        fn = Flaky(failures=5, exc=KernelError)
        with pytest.raises(KernelError):
            with_retries(fn, attempts=5, retry_on=ConnectionError,
                         sleep=clock.sleep)
        assert fn.calls == 1
        assert clock.sleeps == []

    def test_attempts_one_is_plain_call(self):
        clock = FakeClock()
        fn = Flaky(failures=1)
        with pytest.raises(ConnectionError):
            with_retries(fn, attempts=1, retry_on=ConnectionError,
                         sleep=clock.sleep)
        assert fn.calls == 1
        assert clock.sleeps == []

    def test_on_retry_sees_each_failure_and_delay(self):
        clock = FakeClock()
        seen = []
        fn = Flaky(failures=2)
        with_retries(fn, attempts=3, base_delay=1.0, jitter=0.0,
                     retry_on=ConnectionError, sleep=clock.sleep,
                     on_retry=lambda exc, attempt, delay:
                     seen.append((str(exc), attempt, delay)))
        assert seen == [("transient #1", 1, 1.0), ("transient #2", 2, 2.0)]

    def test_jittered_schedule_deterministic_with_rng(self):
        sleeps = []
        for _ in range(2):
            clock = FakeClock()
            with pytest.raises(ConnectionError):
                with_retries(Flaky(failures=9), attempts=4,
                             retry_on=ConnectionError, sleep=clock.sleep,
                             rng=random.Random(11))
            sleeps.append(clock.sleeps)
        assert sleeps[0] == sleeps[1]
        assert len(sleeps[0]) == 3
