"""Interpreter and resolver tests: execution, observers, memory, latency."""

import numpy as np
import pytest

from repro.perfmodel import PIXEL4_CPU, PIXEL4_GPU, WORKSTATION
from repro.runtime import (
    Interpreter,
    OpResolver,
    ReferenceOpResolver,
    node_is_quantized,
)
from repro.util.errors import GraphError, ReproError, ShapeError


class TestInvoke:
    def test_output_shape(self, small_cnn, rng):
        out = Interpreter(small_cnn).invoke_single(
            rng.normal(size=(5, 8, 8, 3)).astype(np.float32))
        assert out.shape == (5, 4)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-5)

    def test_dict_feeds(self, small_cnn, rng):
        x = rng.normal(size=(2, 8, 8, 3)).astype(np.float32)
        out = Interpreter(small_cnn).invoke({"input": x})
        assert "probs" in out

    def test_missing_feed_rejected(self, small_cnn):
        with pytest.raises(ShapeError):
            Interpreter(small_cnn).invoke({})

    def test_wrong_shape_rejected(self, small_cnn, rng):
        with pytest.raises(ShapeError):
            Interpreter(small_cnn).invoke_single(
                rng.normal(size=(2, 9, 8, 3)).astype(np.float32))

    def test_float64_feeds_coerced(self, small_cnn, rng):
        out = Interpreter(small_cnn).invoke_single(rng.normal(size=(1, 8, 8, 3)))
        assert np.isfinite(out).all()

    def test_deterministic(self, small_cnn, rng):
        x = rng.normal(size=(2, 8, 8, 3)).astype(np.float32)
        a = Interpreter(small_cnn).invoke_single(x)
        b = Interpreter(small_cnn).invoke_single(x)
        np.testing.assert_array_equal(a, b)


class TestObservers:
    def test_observer_sees_every_node(self, small_cnn, rng):
        seen = []
        interp = Interpreter(small_cnn)
        interp.add_observer(lambda rec: seen.append(rec.node.name))
        interp.invoke_single(rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
        assert seen == [n.name for n in small_cnn.nodes]

    def test_observer_gets_outputs(self, small_cnn, rng):
        records = {}
        interp = Interpreter(small_cnn)
        interp.add_observer(lambda rec: records.__setitem__(rec.node.name,
                                                            rec.output))
        out = interp.invoke_single(rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
        np.testing.assert_array_equal(records["probs"], out)

    def test_remove_observer(self, small_cnn, rng):
        seen = []
        fn = lambda rec: seen.append(1)
        interp = Interpreter(small_cnn)
        interp.add_observer(fn)
        interp.remove_observer(fn)
        interp.invoke_single(rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
        assert not seen


class TestMemoryAccounting:
    def test_peak_at_least_largest_tensor(self, small_cnn, rng):
        interp = Interpreter(small_cnn)
        x = rng.normal(size=(4, 8, 8, 3)).astype(np.float32)
        interp.invoke_single(x)
        assert interp.last_peak_activation_bytes >= x.nbytes

    def test_weights_bytes(self, small_cnn):
        interp = Interpreter(small_cnn)
        assert interp.weights_bytes() == small_cnn.param_bytes()

    def test_quantized_weights_smaller(self, small_cnn_mobile, small_cnn_quantized):
        float_bytes = Interpreter(small_cnn_mobile).weights_bytes()
        quant_bytes = Interpreter(small_cnn_quantized).weights_bytes()
        assert quant_bytes < float_bytes / 2  # int8 weights + int32 biases


class TestLatency:
    def test_wall_clock_without_device(self, small_cnn, rng):
        interp = Interpreter(small_cnn)
        interp.invoke_single(rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
        assert interp.last_latency_ms > 0
        assert len(interp.last_profile) == len(small_cnn.nodes)

    def test_simulated_latency_deterministic(self, small_cnn, rng):
        x = rng.normal(size=(1, 8, 8, 3)).astype(np.float32)
        a = Interpreter(small_cnn, device=PIXEL4_CPU)
        a.invoke_single(x)
        b = Interpreter(small_cnn, device=PIXEL4_CPU)
        b.invoke_single(x)
        assert a.last_latency_ms == b.last_latency_ms

    def test_reference_resolver_slower_on_device(self, small_cnn_quantized, rng):
        x = rng.normal(size=(1, 8, 8, 3)).astype(np.float32)
        opt = Interpreter(small_cnn_quantized, OpResolver(), PIXEL4_CPU)
        opt.invoke_single(x)
        ref = Interpreter(small_cnn_quantized, ReferenceOpResolver(), PIXEL4_CPU)
        ref.invoke_single(x)
        assert ref.last_latency_ms > 20 * opt.last_latency_ms

    def test_gpu_faster_than_cpu_float(self, small_cnn_mobile, rng):
        x = rng.normal(size=(1, 8, 8, 3)).astype(np.float32)
        cpu = Interpreter(small_cnn_mobile, device=PIXEL4_CPU)
        cpu.invoke_single(x)
        gpu = Interpreter(small_cnn_mobile, device=PIXEL4_GPU)
        gpu.invoke_single(x)
        assert gpu.last_latency_ms < cpu.last_latency_ms

    def test_gpu_rejects_int8(self, small_cnn_quantized, rng):
        interp = Interpreter(small_cnn_quantized, device=PIXEL4_GPU)
        with pytest.raises(ReproError):
            interp.invoke_single(rng.normal(size=(1, 8, 8, 3)).astype(np.float32))

    def test_flatten_dense_tail_latency_pinned(self, rng):
        # Regression: batch used to be re-inferred per node from
        # out.shape[0]; it must come from the graph-input feed, once per
        # invoke, so every node of a flatten->dense tail is charged the
        # same feed batch. The expected value is built from node_work at
        # exactly that batch.
        from repro.graph import GraphBuilder
        from repro.perfmodel.work import OP_CLASS, node_work

        b = GraphBuilder("tail")
        x = b.input("input", (None, 4, 4, 2))
        h = b.add("flatten", x, name="flat")
        h = b.dense(h, rng.normal(size=(32, 3)).astype(np.float32),
                    rng.normal(size=(3,)).astype(np.float32), name="logits")
        b.mark_output(h)
        graph = b.finish()

        batch = 4
        interp = Interpreter(graph, device=PIXEL4_CPU)
        interp.invoke(rng.normal(size=(batch, 4, 4, 2)).astype(np.float32))

        expected = 0.0
        for node in graph.nodes:
            work = node_work(graph, node, batch=batch)
            expected += PIXEL4_CPU.layer_latency_ms(
                OP_CLASS.get(node.op, "act"), "float", "optimized",
                work.macs, work.elements)
        assert interp.last_latency_ms == expected

    def test_batch_not_inferred_from_node_outputs(self, rng):
        # A dynamic non-leading dimension makes the old inference visibly
        # wrong: with input spec (2, None) fed as (2, 8), out.shape[0] is
        # 2 for every node, so the old code charged 2*2=4 elements instead
        # of the actual 2*8=16.
        from repro.graph import GraphBuilder
        from repro.perfmodel.work import node_work

        b = GraphBuilder("seq")
        x = b.input("input", (2, None))
        h = b.activation(x, "relu", name="act")
        b.mark_output(h)
        graph = b.finish()

        interp = Interpreter(graph, device=PIXEL4_CPU)
        interp.invoke(rng.normal(size=(2, 8)).astype(np.float32))
        work = node_work(graph, graph.nodes[0], batch=8)
        assert work.elements == 16  # the real element count of the output
        expected = PIXEL4_CPU.layer_latency_ms(
            "act", "float", "optimized", work.macs, work.elements)
        assert interp.last_latency_ms == expected


class TestResolvers:
    def test_optimized_equals_reference_float(self, small_cnn_mobile, rng):
        x = rng.normal(size=(2, 8, 8, 3)).astype(np.float32)
        a = Interpreter(small_cnn_mobile, OpResolver()).invoke_single(x)
        b = Interpreter(small_cnn_mobile, ReferenceOpResolver()).invoke_single(x)
        np.testing.assert_array_equal(a, b)

    def test_optimized_equals_reference_quantized(self, small_cnn_quantized,
                                                  rng):
        x = rng.normal(size=(2, 8, 8, 3)).astype(np.float32)
        a = Interpreter(small_cnn_quantized, OpResolver()).invoke_single(x)
        b = Interpreter(small_cnn_quantized, ReferenceOpResolver()).invoke_single(x)
        np.testing.assert_array_equal(a, b)

    def test_custom_op_registration(self, small_cnn, rng):
        resolver = OpResolver()
        calls = []

        def spy_softmax(node, inputs, ctx):
            calls.append(node.name)
            from repro.kernels import softmax
            return softmax(inputs[0])

        resolver.register("softmax", False, spy_softmax)
        Interpreter(small_cnn, resolver).invoke_single(
            rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
        assert calls == ["probs"]

    def test_missing_kernel_error(self, small_cnn):
        resolver = OpResolver()
        del resolver._registry[("softmax", False)]
        with pytest.raises(GraphError):
            resolver.lookup("softmax", False)


class TestNodeIsQuantized:
    def test_float_graph(self, small_cnn):
        assert not any(node_is_quantized(small_cnn, n) for n in small_cnn.nodes)

    def test_quantized_graph(self, small_cnn_quantized):
        flags = {n.name: node_is_quantized(small_cnn_quantized, n)
                 for n in small_cnn_quantized.nodes}
        assert flags["stem_act"]          # internal op quantized
        assert not flags["input__q"]      # quantize bridge consumes float
        assert flags["probs__f"]          # dequantize bridge consumes int8
