"""Streaming-scheduler tests: incremental yields, priorities, cancellation."""

import pytest

from repro.util.errors import ValidationError
from repro.validate.scheduler import SweepPolicy, iter_sweep
from repro.validate.sweep import DEFAULT_IMAGE_VARIANTS, SweepVariant, run_sweep
from repro.validate.variants import (
    expected_failure_score,
    order_by_expected_failure,
)

MODEL = "micro_mobilenet_v1"

FAILING = SweepVariant("rot", {"rotation_k": 1})
CLEAN_A = SweepVariant("clean_a")
CLEAN_B = SweepVariant("clean_b")


class TestPolicy:
    def test_nonpositive_max_failures_rejected(self):
        for bad in (0, -1):
            with pytest.raises(ValidationError):
                list(iter_sweep(MODEL, [CLEAN_A], frames=2, executor="serial",
                                policy=SweepPolicy(max_failures=bad)))

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValidationError):
            list(iter_sweep(MODEL, [CLEAN_A], frames=2, executor="serial",
                            policy=SweepPolicy(deadline_s=-1.0)))


class TestPrioritization:
    def test_expected_failure_ranking(self):
        kernel = SweepVariant("k", stage="quantized", kernel_bugs="paper-optimized")
        override = SweepVariant("o", {"channel_order": "bgr"})
        quant = SweepVariant("q", stage="quantized")
        plain = SweepVariant("p")
        scores = [expected_failure_score(v) for v in (kernel, override, quant, plain)]
        assert scores == sorted(scores) == [0, 1, 2, 3]

    def test_order_is_stable_within_score(self):
        lineup = [SweepVariant("a"), SweepVariant("b"),
                  SweepVariant("x", {"rotation_k": 1}),
                  SweepVariant("y", {"channel_order": "bgr"})]
        ordered = order_by_expected_failure(lineup)
        assert [v.name for v in ordered] == ["x", "y", "a", "b"]

    def test_dispatch_follows_priority_order(self):
        dispatched = []
        results = list(iter_sweep(
            MODEL, [CLEAN_A, FAILING], frames=4, executor="serial",
            on_dispatch=lambda v: dispatched.append(v.name)))
        assert dispatched == ["rot", "clean_a"]
        assert [r.variant.name for r in results] == dispatched

    def test_prioritize_off_keeps_lineup_order(self):
        dispatched = []
        list(iter_sweep(
            MODEL, [CLEAN_A, FAILING], frames=4, executor="serial",
            policy=SweepPolicy(prioritize=False),
            on_dispatch=lambda v: dispatched.append(v.name)))
        assert dispatched == ["clean_a", "rot"]


class TestStreaming:
    def test_results_stream_before_later_dispatches(self):
        # The acceptance property: the first VariantResult is in the
        # consumer's hands before the last variant starts executing.
        events = []
        for result in iter_sweep(
                MODEL, DEFAULT_IMAGE_VARIANTS, frames=8, executor="serial",
                on_dispatch=lambda v: events.append(("dispatch", v.name))):
            events.append(("result", result.variant.name))
        first_result = next(i for i, e in enumerate(events) if e[0] == "result")
        last_dispatch = max(i for i, e in enumerate(events) if e[0] == "dispatch")
        assert first_result < last_dispatch
        assert len(events) == 2 * len(DEFAULT_IMAGE_VARIANTS)

    def test_early_close_is_clean(self):
        stream = iter_sweep(MODEL, [CLEAN_A, CLEAN_B], frames=4,
                            executor="serial")
        first = next(stream)
        assert first.completed
        stream.close()  # must not raise or leak the event loop


class TestMaxFailures:
    def test_no_dispatch_after_trip(self):
        dispatched = []
        results = list(iter_sweep(
            MODEL, [FAILING, CLEAN_A, CLEAN_B], frames=12, executor="serial",
            policy=SweepPolicy(max_failures=1),
            on_dispatch=lambda v: dispatched.append(v.name)))
        assert dispatched == ["rot"]  # priority puts the failure first
        assert len(results) == 3

    def test_undispatched_marked_skipped_not_omitted(self):
        report = run_sweep(MODEL, [FAILING, CLEAN_A, CLEAN_B], frames=12,
                           executor="serial", max_failures=1)
        assert len(report.results) == 3  # nothing omitted
        assert report.result("rot").status == "ok"
        for name in ("clean_a", "clean_b"):
            skipped = report.result(name)
            assert skipped.status == "skipped"
            assert skipped.report is None
            assert not skipped.healthy and skipped.num_issues == 0
        assert not report.healthy
        text = report.render()
        assert "SKIPPED" in text and "2 skipped" in text

    def test_thread_pool_stops_dispatching(self):
        dispatched = []
        results = list(iter_sweep(
            MODEL, [FAILING, CLEAN_A, CLEAN_B], frames=12, executor="thread",
            workers=1, policy=SweepPolicy(max_failures=1),
            on_dispatch=lambda v: dispatched.append(v.name)))
        assert dispatched == ["rot"]
        statuses = {r.variant.name: r.status for r in results}
        assert statuses == {"rot": "ok", "clean_a": "skipped",
                            "clean_b": "skipped"}

    def test_unreached_limit_runs_everything(self):
        report = run_sweep(MODEL, [CLEAN_A, CLEAN_B], frames=4,
                           executor="serial", max_failures=5)
        assert all(r.status == "ok" for r in report.results)
        assert report.healthy


class TestDeadline:
    def test_expired_budget_cancels_everything(self):
        dispatched = []
        results = list(iter_sweep(
            MODEL, [CLEAN_A, CLEAN_B], frames=4, executor="serial",
            policy=SweepPolicy(deadline_s=0.0),
            on_dispatch=lambda v: dispatched.append(v.name)))
        assert dispatched == []
        assert [r.status for r in results] == ["cancelled", "cancelled"]

    def test_incomplete_sweep_is_not_healthy(self):
        report = run_sweep(MODEL, [CLEAN_A, CLEAN_B], frames=4,
                           executor="serial", deadline_s=0.0)
        assert not report.healthy  # nothing completed: health is unknown
        assert "INCOMPLETE" in report.render()

    def test_midflight_expiry_cancels_stragglers(self, monkeypatch):
        # Exercise the pool-path timeout branch deterministically: a worker
        # far slower than the budget guarantees the deadline expires with a
        # job in flight, so both the straggler and the queued variant must
        # come back cancelled.
        import time

        import repro.validate.scheduler as scheduler_mod
        from repro.validate.reporting import VariantResult
        from repro.validate.session import ValidationReport

        def slow_worker(args):
            time.sleep(1.0)
            return VariantResult(args[1], ValidationReport(accuracy=None),
                                 0.0, 0.0)

        monkeypatch.setattr(scheduler_mod, "_run_variant_args", slow_worker)
        dispatched = []
        results = list(iter_sweep(
            MODEL, [CLEAN_A, CLEAN_B], frames=2, executor="thread",
            workers=1, policy=SweepPolicy(deadline_s=0.2),
            on_dispatch=lambda v: dispatched.append(v.name)))
        assert dispatched == ["clean_a"]  # one in flight when time ran out
        assert {r.variant.name: r.status for r in results} == \
            {"clean_a": "cancelled", "clean_b": "cancelled"}

    def test_generous_budget_changes_nothing(self):
        baseline = run_sweep(MODEL, [CLEAN_A], frames=4, executor="serial")
        budgeted = run_sweep(MODEL, [CLEAN_A], frames=4, executor="serial",
                             deadline_s=3600.0)
        assert baseline.render() == budgeted.render()


class TestRunSweepWrapper:
    def test_report_keeps_lineup_order_despite_priorities(self):
        lineup = [CLEAN_A, FAILING, CLEAN_B]
        report = run_sweep(MODEL, lineup, frames=12, executor="serial")
        assert [r.variant.name for r in report.results] == \
            [v.name for v in lineup]

    def test_streamed_drain_matches_blocking_serial(self):
        blocking = run_sweep(MODEL, DEFAULT_IMAGE_VARIANTS, frames=8,
                             executor="serial")
        drained = sorted(
            iter_sweep(MODEL, DEFAULT_IMAGE_VARIANTS, frames=8,
                       executor="serial"),
            key=lambda r: [v.name for v in DEFAULT_IMAGE_VARIANTS]
            .index(r.variant.name))
        assert [r.variant.name for r in drained] == \
            [r.variant.name for r in blocking.results]
        for ours, theirs in zip(drained, blocking.results):
            assert ours.report.render() == theirs.report.render()
            assert ours.mean_latency_ms == theirs.mean_latency_ms
