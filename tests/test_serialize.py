"""Model serialization round-trips and failure modes."""

import numpy as np
import pytest

from repro.graph import graph_from_bytes, graph_to_bytes, load_model, save_model
from repro.runtime import Interpreter
from repro.util.errors import GraphError


class TestRoundTrip:
    def test_structure_preserved(self, small_cnn):
        restored = graph_from_bytes(graph_to_bytes(small_cnn))
        assert [n.name for n in restored.nodes] == [n.name for n in small_cnn.nodes]
        assert [n.op for n in restored.nodes] == [n.op for n in small_cnn.nodes]
        assert restored.inputs == small_cnn.inputs
        assert restored.outputs == small_cnn.outputs

    def test_weights_bitwise_equal(self, small_cnn):
        restored = graph_from_bytes(graph_to_bytes(small_cnn))
        for a, b in zip(small_cnn.nodes, restored.nodes):
            for key in a.weights:
                np.testing.assert_array_equal(a.weights[key], b.weights[key])
                assert a.weights[key].dtype == b.weights[key].dtype

    def test_execution_identical(self, small_cnn, rng):
        restored = graph_from_bytes(graph_to_bytes(small_cnn))
        x = rng.normal(size=(3, 8, 8, 3)).astype(np.float32)
        np.testing.assert_array_equal(
            Interpreter(small_cnn).invoke_single(x),
            Interpreter(restored).invoke_single(x))

    def test_quantized_model_roundtrip(self, small_cnn_quantized, calib_batch):
        restored = graph_from_bytes(graph_to_bytes(small_cnn_quantized))
        assert restored.is_quantized
        np.testing.assert_array_equal(
            Interpreter(small_cnn_quantized).invoke_single(calib_batch),
            Interpreter(restored).invoke_single(calib_batch))

    def test_metadata_preserved(self, small_cnn):
        small_cnn.metadata["custom"] = {"a": 1}
        restored = graph_from_bytes(graph_to_bytes(small_cnn))
        assert restored.metadata["custom"] == {"a": 1}

    def test_file_io(self, small_cnn, tmp_path):
        path = tmp_path / "model.rpm"
        size = save_model(small_cnn, path)
        assert path.stat().st_size == size
        restored = load_model(path)
        assert restored.name == small_cnn.name

    def test_attr_tuples_survive(self, small_cnn_mobile):
        # pad2d attrs are nested tuples; JSON turns them into lists, the
        # loader must convert back (resolve_padding requires tuples).
        payload = graph_to_bytes(small_cnn_mobile)
        restored = graph_from_bytes(payload)
        for node in restored.nodes:
            if node.op == "pad2d":
                assert isinstance(node.attrs["paddings"], tuple)


class TestFailureModes:
    def test_garbage_bytes_rejected(self):
        with pytest.raises(Exception):
            graph_from_bytes(b"not a model")

    def test_version_check(self, small_cnn):
        import io
        import json

        import numpy as np
        payload = graph_to_bytes(small_cnn)
        with np.load(io.BytesIO(payload)) as data:
            doc = json.loads(bytes(data["__graph__"]).decode())
            arrays = {k: data[k] for k in data.files if k != "__graph__"}
        doc["format_version"] = 999
        buffer = io.BytesIO()
        np.savez_compressed(buffer, __graph__=np.frombuffer(
            json.dumps(doc).encode(), dtype=np.uint8), **arrays)
        with pytest.raises(GraphError):
            graph_from_bytes(buffer.getvalue())
