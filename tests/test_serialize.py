"""Model serialization round-trips and failure modes."""

import io
import json

import numpy as np
import pytest

from repro.graph import graph_from_bytes, graph_to_bytes, load_model, save_model
from repro.runtime import Interpreter
from repro.util.errors import GraphError, ValidationError


class TestRoundTrip:
    def test_structure_preserved(self, small_cnn):
        restored = graph_from_bytes(graph_to_bytes(small_cnn))
        assert [n.name for n in restored.nodes] == [n.name for n in small_cnn.nodes]
        assert [n.op for n in restored.nodes] == [n.op for n in small_cnn.nodes]
        assert restored.inputs == small_cnn.inputs
        assert restored.outputs == small_cnn.outputs

    def test_weights_bitwise_equal(self, small_cnn):
        restored = graph_from_bytes(graph_to_bytes(small_cnn))
        for a, b in zip(small_cnn.nodes, restored.nodes):
            for key in a.weights:
                np.testing.assert_array_equal(a.weights[key], b.weights[key])
                assert a.weights[key].dtype == b.weights[key].dtype

    def test_execution_identical(self, small_cnn, rng):
        restored = graph_from_bytes(graph_to_bytes(small_cnn))
        x = rng.normal(size=(3, 8, 8, 3)).astype(np.float32)
        np.testing.assert_array_equal(
            Interpreter(small_cnn).invoke_single(x),
            Interpreter(restored).invoke_single(x))

    def test_quantized_model_roundtrip(self, small_cnn_quantized, calib_batch):
        restored = graph_from_bytes(graph_to_bytes(small_cnn_quantized))
        assert restored.is_quantized
        np.testing.assert_array_equal(
            Interpreter(small_cnn_quantized).invoke_single(calib_batch),
            Interpreter(restored).invoke_single(calib_batch))

    def test_metadata_preserved(self, small_cnn):
        small_cnn.metadata["custom"] = {"a": 1}
        restored = graph_from_bytes(graph_to_bytes(small_cnn))
        assert restored.metadata["custom"] == {"a": 1}

    def test_file_io(self, small_cnn, tmp_path):
        path = tmp_path / "model.rpm"
        size = save_model(small_cnn, path)
        assert path.stat().st_size == size
        restored = load_model(path)
        assert restored.name == small_cnn.name

    def test_attr_tuples_survive(self, small_cnn_mobile):
        # pad2d attrs are nested tuples; JSON turns them into lists, the
        # loader must convert back (resolve_padding requires tuples).
        payload = graph_to_bytes(small_cnn_mobile)
        restored = graph_from_bytes(payload)
        for node in restored.nodes:
            if node.op == "pad2d":
                assert isinstance(node.attrs["paddings"], tuple)


def _repack(payload: bytes, mutate) -> bytes:
    """Re-serialize a model payload after ``mutate(doc)`` corrupts it."""
    with np.load(io.BytesIO(payload)) as data:
        doc = json.loads(bytes(data["__graph__"]).decode())
        arrays = {k: data[k] for k in data.files if k != "__graph__"}
    mutate(doc)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, __graph__=np.frombuffer(
        json.dumps(doc).encode(), dtype=np.uint8), **arrays)
    return buffer.getvalue()


class TestFailureModes:
    def test_garbage_bytes_rejected(self):
        with pytest.raises(ValidationError, match="malformed model file"):
            graph_from_bytes(b"not a model")

    def test_version_check(self, small_cnn):
        payload = _repack(graph_to_bytes(small_cnn),
                          lambda doc: doc.update(format_version=999))
        with pytest.raises(GraphError):
            graph_from_bytes(payload)


class TestCorruptDocuments:
    """Regression: malformed documents name the offending field path
    (ValidationError) instead of leaking a bare KeyError from the loader."""

    def test_missing_top_level_field(self, small_cnn):
        payload = _repack(graph_to_bytes(small_cnn),
                          lambda doc: doc.pop("nodes"))
        with pytest.raises(ValidationError, match="missing field 'nodes'"):
            graph_from_bytes(payload)

    def test_missing_node_field_names_index(self, small_cnn):
        payload = _repack(graph_to_bytes(small_cnn),
                          lambda doc: doc["nodes"][2].pop("op"))
        with pytest.raises(ValidationError,
                           match=r"missing field 'nodes\[2\].op'"):
            graph_from_bytes(payload)

    def test_missing_tensor_field_names_index(self, small_cnn):
        payload = _repack(graph_to_bytes(small_cnn),
                          lambda doc: doc["tensors"][0].pop("shape"))
        with pytest.raises(ValidationError, match=r"tensors\[0\]"):
            graph_from_bytes(payload)

    def test_missing_weight_quant_field_names_key(self, small_cnn_quantized):
        def drop_scale(doc):
            for njson in doc["nodes"]:
                for q in njson["weight_quant"].values():
                    q.pop("scale")
                    return
        payload = _repack(graph_to_bytes(small_cnn_quantized), drop_scale)
        with pytest.raises(ValidationError, match=r"weight_quant\['"):
            graph_from_bytes(payload)

    def test_non_mapping_node_rejected(self, small_cnn):
        def replace(doc):
            doc["nodes"][0] = "not a node"
        payload = _repack(graph_to_bytes(small_cnn), replace)
        with pytest.raises(ValidationError, match="should be a mapping"):
            graph_from_bytes(payload)

    def test_missing_weight_array_stays_graph_error(self, small_cnn):
        # A well-formed document whose array entry vanished is a structural
        # problem, not a malformed document.
        def add_key(doc):
            doc["nodes"][0]["weight_keys"].append("phantom")
        payload = _repack(graph_to_bytes(small_cnn), add_key)
        with pytest.raises(GraphError, match="phantom"):
            graph_from_bytes(payload)

    def test_load_model_prefixes_path(self, small_cnn, tmp_path):
        path = tmp_path / "broken.rpm"
        path.write_bytes(_repack(graph_to_bytes(small_cnn),
                                 lambda doc: doc.pop("outputs")))
        with pytest.raises(ValidationError, match="broken.rpm"):
            load_model(path)

    def test_load_model_unreadable_path(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot read model file"):
            load_model(tmp_path / "absent.rpm")
