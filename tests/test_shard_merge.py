"""Sharded-sweep tests: partition invariance, fault injection, manifests.

The core property: for a fixed lineup, *any* shard partition merges back
into a fleet report byte-identical (ordering, verdicts, triage clusters)
to the in-process ``run_sweep`` — variants are deterministic and
order-independent, so where they ran must not matter. The fault-injection
half pins the defensive contract: truncated manifests, missing artifacts,
digest mismatches, and duplicate variants surface as named
``ValidationError``\\ s or ``skipped``/``INCOMPLETE`` merge outcomes,
never tracebacks.
"""

import json
import shutil

import pytest

from repro.instrument.store import log_digest
from repro.util.errors import ValidationError
from repro.validate.execution import build_reference_log
from repro.validate.merge import merge_shards
from repro.validate.shard import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA_VERSION,
    REPORT_NAME,
    ShardManifest,
    plan_shards,
    run_shard,
    write_shards,
)
from repro.validate.sweep import run_sweep
from repro.validate.triage import triage_sweep
from repro.validate.variants import SweepVariant, expand_backends

MODEL = "micro_mobilenet_v1"
FRAMES = 8

LINEUP = (
    SweepVariant("clean"),
    SweepVariant("tap", resolver="batched"),
    SweepVariant("rot90", {"rotation_k": 1}),
)


def shard_and_merge(tmp, lineup, n_shards, frames=FRAMES, triage=True):
    """Plan → run every shard → merge: the whole fleet flow, in process."""
    ref_root = tmp / "reference"
    build_reference_log(MODEL, frames, "sweep", log_root=ref_root)
    manifests = plan_shards(MODEL, list(lineup), n_shards=n_shards,
                            frames=frames, reference="../reference",
                            reference_digest=log_digest(ref_root))
    shard_dirs = write_shards(manifests, tmp)
    for shard_dir in shard_dirs:
        run_shard(shard_dir / MANIFEST_NAME, shard_dir, executor="serial")
    return merge_shards(shard_dirs, triage=triage), shard_dirs


@pytest.fixture(scope="module")
def baseline():
    report = run_sweep(MODEL, LINEUP, frames=FRAMES, executor="serial")
    report.triage = triage_sweep(report)
    return report


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """A fully-executed 2-shard fleet of LINEUP: shard-000=[clean, tap],
    shard-001=[rot90]. Fault tests copy it and corrupt the copy."""
    tmp = tmp_path_factory.mktemp("fleet")
    _, shard_dirs = shard_and_merge(tmp, LINEUP, 2)
    return tmp, shard_dirs


def corrupted_fleet(fleet, tmp_path):
    """A private copy of the executed fleet, safe to vandalize."""
    src, _ = fleet
    dst = tmp_path / "fleet"
    shutil.copytree(src, dst)
    return dst, [dst / "shard-000", dst / "shard-001"]


class TestPartitionInvariance:
    @pytest.mark.parametrize("n_shards", [1, 2, len(LINEUP)])
    def test_merge_is_byte_identical_to_run_sweep(self, tmp_path, baseline,
                                                  n_shards):
        merged, _ = shard_and_merge(tmp_path, LINEUP, n_shards)
        assert merged.render() == baseline.render()
        assert [r.verdict() for r in merged.results] == \
            [r.verdict() for r in baseline.results]
        assert [r.variant.name for r in merged.results] == \
            [v.name for v in LINEUP]
        assert [(c.label, c.variant_names) for c in merged.triage.clusters] \
            == [(c.label, c.variant_names) for c in baseline.triage.clusters]
        assert merged.notes == []

    def test_backend_fanout_lineup_splits_across_shards(self, tmp_path):
        # name@backend clones of the same base variant land on different
        # shards; the merge must still reconstruct the lineup order and
        # the exact verdicts of the in-process sweep.
        lineup = expand_backends(
            [SweepVariant("clean"), SweepVariant("rot", {"rotation_k": 1})],
            ["optimized", "batched"])
        assert [v.name for v in lineup] == [
            "clean@optimized", "clean@batched",
            "rot@optimized", "rot@batched"]
        baseline = run_sweep(MODEL, lineup, frames=6, executor="serial")
        baseline.triage = triage_sweep(baseline)
        merged, shard_dirs = shard_and_merge(tmp_path, lineup, 3, frames=6)
        assert len(shard_dirs) == 3  # 2/1/1 split: clones truly separated
        assert merged.render() == baseline.render()

    def test_merged_log_dirs_point_into_artifacts(self, fleet):
        _, shard_dirs = fleet
        merged = merge_shards(shard_dirs)
        for result in merged.results:
            assert result.log_dir is not None
            assert result.variant.name in result.log_dir
            assert any(str(d) in result.log_dir for d in shard_dirs)


class TestPlanShards:
    def test_contiguous_balanced_partition(self):
        manifests = plan_shards(MODEL, LINEUP, n_shards=2, frames=4)
        assert [m.shard_id for m in manifests] == ["shard-000", "shard-001"]
        assert [[v.name for v in m.variants] for m in manifests] == \
            [["clean", "tap"], ["rot90"]]
        assert all(tuple(m.lineup) == tuple(LINEUP) for m in manifests)
        assert all(m.num_shards == 2 for m in manifests)

    def test_max_variants_per_shard(self):
        manifests = plan_shards(MODEL, LINEUP, max_variants_per_shard=1)
        assert len(manifests) == 3
        assert [len(m.variants) for m in manifests] == [1, 1, 1]

    def test_n_shards_clamped_to_lineup(self):
        manifests = plan_shards(MODEL, LINEUP, n_shards=10, frames=4)
        assert len(manifests) == len(LINEUP)  # no empty shards

    def test_exactly_one_partition_knob_required(self):
        with pytest.raises(ValidationError):
            plan_shards(MODEL, LINEUP)
        with pytest.raises(ValidationError):
            plan_shards(MODEL, LINEUP, n_shards=2, max_variants_per_shard=1)

    def test_bad_knob_values_rejected(self):
        with pytest.raises(ValidationError):
            plan_shards(MODEL, LINEUP, n_shards=0)
        with pytest.raises(ValidationError):
            plan_shards(MODEL, LINEUP, max_variants_per_shard=0)

    def test_duplicate_lineup_rejected_at_planning(self):
        with pytest.raises(ValidationError):
            plan_shards(MODEL, [SweepVariant("a"), SweepVariant("a")],
                        n_shards=2)


class TestManifestRoundTrip:
    def test_save_load_is_identity(self, tmp_path):
        manifest = plan_shards(
            MODEL, LINEUP, n_shards=2, frames=4, always_assert=True,
            reference="../reference", reference_digest="ab" * 32)[0]
        path = manifest.save(tmp_path / "m.json")
        assert ShardManifest.load(path) == manifest

    def test_doc_version_stamped_and_checked(self):
        doc = plan_shards(MODEL, LINEUP, n_shards=1, frames=4)[0].to_doc()
        assert doc["schema_version"] == MANIFEST_SCHEMA_VERSION
        doc["schema_version"] = 99
        with pytest.raises(ValidationError, match="schema version"):
            ShardManifest.from_doc(doc)

    def test_truncated_manifest_named_error(self, tmp_path):
        path = plan_shards(MODEL, LINEUP, n_shards=1, frames=4)[0] \
            .save(tmp_path / "m.json")
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(ValidationError, match="truncated"):
            ShardManifest.load(path)

    def test_missing_manifest_named_error(self, tmp_path):
        with pytest.raises(ValidationError, match="no shard manifest"):
            ShardManifest.load(tmp_path / "nope.json")


class TestDigests:
    def test_log_digest_is_content_addressed(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        for root in (a, b):
            (root / "sub").mkdir(parents=True)
            (root / "x.txt").write_text("hello")
            (root / "sub" / "y.bin").write_bytes(b"\x00\x01")
        assert log_digest(a) == log_digest(b)  # location-independent
        (b / "x.txt").write_text("hellO")
        assert log_digest(a) != log_digest(b)

    def test_log_digest_sees_missing_files(self, tmp_path):
        root = tmp_path / "log"
        root.mkdir()
        (root / "x.txt").write_text("hello")
        (root / "y.txt").write_text("world")
        before = log_digest(root)
        (root / "y.txt").unlink()
        assert log_digest(root) != before

    def test_digest_type_mismatch_rejected(self, tmp_path):
        from repro.instrument.store import file_digest

        (tmp_path / "f").write_text("x")
        with pytest.raises(ValidationError):
            log_digest(tmp_path / "f")
        with pytest.raises(ValidationError):
            file_digest(tmp_path)


class TestFaultInjection:
    def test_truncated_manifest_shard_becomes_skipped(self, fleet, tmp_path):
        _, dirs = corrupted_fleet(fleet, tmp_path)
        manifest = dirs[0] / MANIFEST_NAME
        manifest.write_text(manifest.read_text()[:40])
        merged = merge_shards(dirs)  # never a traceback
        assert merged.result("clean").status == "skipped"
        assert merged.result("tap").status == "skipped"
        assert not merged.result("rot90").healthy
        assert any("manifest" in note for note in merged.notes)
        assert "skipped" in merged.render()

    def test_missing_shard_artifact_yields_incomplete_verdict(self, fleet,
                                                              tmp_path):
        _, dirs = corrupted_fleet(fleet, tmp_path)
        (dirs[1] / REPORT_NAME).unlink()  # the worker "never ran"
        merged = merge_shards(dirs)
        assert merged.result("rot90").status == "skipped"
        # shard-000's variants are all healthy, so the merged verdict is
        # INCOMPLETE, not unhealthy: rot90's health is simply unknown.
        assert "INCOMPLETE (1 skipped)" in merged.render()
        assert any("never ran" in note for note in merged.notes)

    def test_tensor_shard_digest_mismatch_quarantines_shard(self, fleet,
                                                            tmp_path):
        _, dirs = corrupted_fleet(fleet, tmp_path)
        shard = next((dirs[0] / "logs" / "clean" / "tensors").glob("*.npz"))
        shard.write_bytes(b"\x00" + shard.read_bytes()[1:])
        merged = merge_shards(dirs)
        assert merged.result("clean").status == "skipped"
        assert merged.result("tap").status == "skipped"
        assert any("digest" in note for note in merged.notes)
        with pytest.raises(ValidationError, match="digest"):
            merge_shards(dirs, strict=True)

    def test_digest_index_must_cover_report(self, fleet, tmp_path):
        # An "empty but valid" digest index must not exempt the artifact
        # from verification.
        _, dirs = corrupted_fleet(fleet, tmp_path)
        (dirs[0] / "digests.json").write_text("{}")
        merged = merge_shards(dirs)
        assert merged.result("clean").status == "skipped"
        assert any("does not cover" in note for note in merged.notes)
        with pytest.raises(ValidationError, match="does not cover"):
            merge_shards(dirs, strict=True)

    def test_tampered_manifest_quarantined_not_trusted(self, fleet,
                                                       tmp_path):
        # A corrupted-but-parseable manifest must fail its digest check
        # before it can poison the lineup-identity comparison (or become
        # the merge's lineup authority when listed first).
        _, dirs = corrupted_fleet(fleet, tmp_path)
        manifest_path = dirs[0] / MANIFEST_NAME
        doc = ShardManifest.load(manifest_path).to_doc()
        doc["lineup"][0]["name"] = "evil"
        manifest_path.write_text(json.dumps(doc))
        merged = merge_shards(dirs)  # dirs[0] first: must not be trusted
        assert [r.variant.name for r in merged.results] == \
            [v.name for v in LINEUP]
        assert merged.result("clean").status == "skipped"
        with pytest.raises(ValidationError, match="digest"):
            merge_shards(dirs, strict=True)

    def test_digest_index_must_cover_claimed_logs(self, fleet, tmp_path):
        _, dirs = corrupted_fleet(fleet, tmp_path)
        digests_path = dirs[0] / "digests.json"
        digests = json.loads(digests_path.read_text())
        digests.pop("logs/clean")
        digests_path.write_text(json.dumps(digests))
        merged = merge_shards(dirs)
        assert merged.result("clean").status == "skipped"
        assert any("logs/clean" in note for note in merged.notes)

    def test_corrupt_report_json_quarantines_shard(self, fleet, tmp_path):
        _, dirs = corrupted_fleet(fleet, tmp_path)
        report = dirs[0] / REPORT_NAME
        report.write_text(report.read_text()[:100])
        merged = merge_shards(dirs)
        assert merged.result("clean").status == "skipped"
        with pytest.raises(ValidationError):
            merge_shards(dirs, strict=True)

    def test_unverified_merge_skips_digests_not_structure(self, fleet,
                                                          tmp_path):
        # verify=False (the just-wrote-it driver path) ignores digest
        # drift but still catches structural corruption.
        _, dirs = corrupted_fleet(fleet, tmp_path)
        shard = next((dirs[0] / "logs" / "clean" / "tensors").glob("*.npz"))
        shard.write_bytes(b"\x00" + shard.read_bytes()[1:])
        merged = merge_shards(dirs, verify=False)
        assert merged.result("clean").completed  # digest drift not checked
        (dirs[1] / REPORT_NAME).unlink()
        merged = merge_shards(dirs, verify=False)
        assert merged.result("rot90").status == "skipped"

    def test_duplicate_variants_across_shards_named_error(self, fleet,
                                                          tmp_path):
        src, _ = fleet
        a = tmp_path / "a"
        b = tmp_path / "b"
        shutil.copytree(src / "shard-000", a)
        shutil.copytree(src / "shard-000", b)
        with pytest.raises(ValidationError, match="'clean'"):
            merge_shards([a, b])

    def test_stray_variant_not_in_lineup_named_error(self, fleet, tmp_path):
        _, dirs = corrupted_fleet(fleet, tmp_path)
        report_path = dirs[0] / REPORT_NAME
        doc = json.loads(report_path.read_text())
        doc["report"]["results"][0]["variant"]["name"] = "imposter"
        report_path.write_text(json.dumps(doc))
        # Re-stamp the digest so only the stray name is wrong.
        from repro.instrument.store import file_digest
        digests_path = dirs[0] / "digests.json"
        digests = json.loads(digests_path.read_text())
        digests[REPORT_NAME] = file_digest(report_path)
        digests_path.write_text(json.dumps(digests))
        with pytest.raises(ValidationError, match="imposter"):
            merge_shards(dirs)

    @pytest.mark.parametrize("field, value", [
        ("frames", 999),
        ("tag", "nightly"),          # playback derives from (model, frames, tag)
        ("always_assert", True),     # a different notion of "healthy"
        ("model", "micro_mobilenet_v2"),
    ])
    def test_mismatched_sweeps_refuse_to_merge(self, fleet, tmp_path,
                                               field, value):
        from repro.instrument.store import file_digest

        _, dirs = corrupted_fleet(fleet, tmp_path)
        doc = ShardManifest.load(dirs[0] / MANIFEST_NAME).to_doc()
        doc[field] = value
        ShardManifest.from_doc(doc).save(dirs[0] / MANIFEST_NAME)
        # Re-stamp the manifest digest: this simulates an honestly-planned
        # *different* sweep (not tampering), which must hit the identity
        # check, not the digest quarantine.
        digests_path = dirs[0] / "digests.json"
        digests = json.loads(digests_path.read_text())
        digests[MANIFEST_NAME] = file_digest(dirs[0] / MANIFEST_NAME)
        digests_path.write_text(json.dumps(digests))
        with pytest.raises(ValidationError, match="disagree"):
            merge_shards(dirs)

    def test_no_readable_manifest_is_an_error(self, tmp_path):
        empty = tmp_path / "shard-000"
        empty.mkdir()
        with pytest.raises(ValidationError, match="no readable"):
            merge_shards([empty])

    def test_merge_of_partial_fleet_accounts_for_absent_shards(self, fleet):
        _, dirs = fleet
        merged = merge_shards([dirs[0]])  # shard-001 never came back
        assert [r.variant.name for r in merged.results] == \
            [v.name for v in LINEUP]
        assert merged.result("rot90").status == "skipped"
        assert not merged.healthy

    def test_corrupt_reference_refuses_to_run_shard(self, tmp_path):
        ref_root = tmp_path / "reference"
        build_reference_log(MODEL, 4, "sweep", log_root=ref_root)
        manifests = plan_shards(
            MODEL, [SweepVariant("clean")], n_shards=1, frames=4,
            reference="../reference", reference_digest=log_digest(ref_root))
        shard_dir = write_shards(manifests, tmp_path)[0]
        meta = ref_root / "meta.json"
        meta.write_text(meta.read_text() + "\n")
        with pytest.raises(ValidationError, match="digest"):
            run_shard(shard_dir / MANIFEST_NAME, shard_dir, executor="serial")

    def test_missing_reference_rebuilt_deterministically(self, tmp_path,
                                                         baseline):
        # A worker that never received the shared reference rebuilds it
        # from (model, frames, tag) and still produces identical results.
        manifests = plan_shards(MODEL, LINEUP, n_shards=1, frames=FRAMES,
                                reference="../reference",
                                reference_digest="ab" * 32)
        shard_dir = write_shards(manifests, tmp_path)[0]
        report = run_shard(shard_dir / MANIFEST_NAME, shard_dir,
                           executor="serial")
        assert [r.verdict() for r in report.results] == \
            [r.verdict() for r in baseline.results]
        assert (shard_dir / "logs" / "reference" / "meta.json").exists()
