"""Streaming-instrumentation tests: sinks, frame scopes, lazy log readers.

Covers the LogSink redesign: MemorySink parity with the buffered monitor,
DirectorySink incremental streaming (O(1) resident frames, mid-stream
readability, v2 layout), RingBufferSink bounded always-on mode, TeeSink
fan-out, the ``with monitor.frame(...)`` scope, lazy ``EXrayLog`` readers,
and the save/load canonicalization + v1-compat guarantees.
"""

import gc
import json
import weakref
from pathlib import Path

import numpy as np
import pytest

from repro.instrument import (
    DirectorySink,
    EXrayLog,
    EdgeMLMonitor,
    MemorySink,
    RingBufferSink,
    TeeSink,
    save_log,
)
from repro.runtime import Interpreter
from repro.util.errors import ValidationError
from repro.validate.layerdiff import per_layer_diff
from repro.validate.session import DebugSession


def stream_frames(graph, monitor, x_frames, scale=1.0):
    """Drive `len(x_frames)` instrumented inferences through a monitor."""
    interp = Interpreter(graph)
    monitor.attach(interp)
    for i in range(len(x_frames)):
        monitor.log("model_input", x_frames[i] * scale)
        with monitor.frame(interp) as frame:
            out = interp.invoke(x_frames[i:i + 1] * scale)
            frame.tensors["model_output"] = next(iter(out.values()))[0]
    return interp


@pytest.fixture
def x_frames(rng):
    return rng.normal(size=(4, 8, 8, 3)).astype(np.float32)


class TestMemorySink:
    def test_default_sink_is_memory(self):
        assert isinstance(EdgeMLMonitor().sink, MemorySink)

    def test_frames_property_is_live_view(self, small_cnn, x_frames):
        monitor = EdgeMLMonitor(sink=MemorySink())
        stream_frames(small_cnn, monitor, x_frames)
        assert monitor.frames is monitor.sink.frames
        assert [f.step for f in monitor.frames] == [0, 1, 2, 3]

    def test_from_monitor_is_zero_copy(self, small_cnn, x_frames):
        monitor = EdgeMLMonitor()
        stream_frames(small_cnn, monitor, x_frames)
        log = EXrayLog.from_monitor(monitor)
        assert log.frames is monitor.sink.frames


class TestFrameScope:
    def test_frame_scope_emits_on_exit(self, small_cnn, x_frames):
        monitor = EdgeMLMonitor()
        stream_frames(small_cnn, monitor, x_frames[:1])
        frame = monitor.frames[0]
        assert "model_output" in frame.tensors
        assert "model_input" in frame.tensors  # lazy frame adopted
        assert frame.latency_ms > 0

    def test_frame_scope_discards_on_exception(self, small_cnn):
        monitor = EdgeMLMonitor()
        with pytest.raises(RuntimeError):
            with monitor.frame():
                raise RuntimeError("inference blew up")
        assert monitor.num_frames == 0
        # The monitor is reusable after the aborted frame.
        with monitor.frame():
            pass
        assert monitor.num_frames == 1

    def test_nested_frame_rejected(self):
        monitor = EdgeMLMonitor()
        with pytest.raises(ValidationError):
            with monitor.frame():
                monitor.on_inf_start()


class TestDetach:
    def test_detach_unattached_raises_validation_error(self, small_cnn):
        monitor = EdgeMLMonitor()
        interp = Interpreter(small_cnn)
        with pytest.raises(ValidationError, match="not attached"):
            monitor.detach(interp)

    def test_failed_detach_leaves_observers_untouched(self, small_cnn, x_frames):
        monitor = EdgeMLMonitor()
        stranger = Interpreter(small_cnn)
        interp = stream_frames(small_cnn, monitor, x_frames[:1])
        with pytest.raises(ValidationError):
            monitor.detach(stranger)
        # The attached interpreter still reports into the monitor.
        with monitor.frame(interp):
            interp.invoke(x_frames[:1])
        assert monitor.frames[-1].layer_latency_ms
        monitor.detach(interp)  # the real attachment detaches cleanly
        with monitor.frame(interp):
            interp.invoke(x_frames[:1])
        assert not monitor.frames[-1].layer_latency_ms


class TestSummary:
    def test_sensor_only_frames_excluded_from_latency(self, small_cnn, x_frames):
        monitor = EdgeMLMonitor()
        stream_frames(small_cnn, monitor, x_frames)
        monitor.log_sensor("battery", 0.4)   # trailing sensor-only frame
        monitor.flush()
        summary = monitor.summary()
        assert summary["num_frames"] == 5
        assert summary["sensor_only_frames"] == 1
        # The flushed frame's placeholder zero latency must not drag the
        # mean: it equals the mean over the four inference frames alone.
        lat = [f.latency_ms for f in monitor.frames if not f.sensor_only]
        assert summary["mean_latency_ms"] == pytest.approx(np.mean(lat))
        assert summary["mean_wall_ms"] == pytest.approx(
            np.mean([f.wall_ms for f in monitor.frames if not f.sensor_only]))

    def test_flushed_frame_marked_sensor_only(self):
        monitor = EdgeMLMonitor()
        monitor.log_sensor("orientation", 90)
        frame = monitor.flush()
        assert frame.sensor_only
        assert monitor.summary()["sensor_only_frames"] == 1

    def test_sensor_only_excluded_from_log_mean_latency(self, small_cnn, x_frames):
        monitor = EdgeMLMonitor()
        stream_frames(small_cnn, monitor, x_frames)
        monitor.log_sensor("battery", 0.4)
        log = EXrayLog.from_monitor(monitor)
        assert log.num_sensor_only() == 1
        lat = [f.latency_ms for f in log.frames if not f.sensor_only]
        assert log.mean_latency_ms() == pytest.approx(np.mean(lat))


class TestRingBufferSink:
    def test_keeps_last_n_frames(self, small_cnn, rng):
        x = rng.normal(size=(10, 8, 8, 3)).astype(np.float32)
        sink = RingBufferSink(capacity=3)
        monitor = EdgeMLMonitor(sink=sink)
        stream_frames(small_cnn, monitor, x)
        assert [f.step for f in sink.frames] == [7, 8, 9]

    def test_summary_covers_whole_stream(self, small_cnn, rng):
        x = rng.normal(size=(10, 8, 8, 3)).astype(np.float32)
        monitor = EdgeMLMonitor(sink=RingBufferSink(capacity=3))
        stream_frames(small_cnn, monitor, x)
        summary = monitor.summary()
        assert summary["num_frames"] == 10
        assert summary["mean_latency_ms"] > 0

    def test_capacity_validated(self):
        with pytest.raises(ValidationError):
            RingBufferSink(capacity=0)

    def test_no_double_count_on_frame_reentry_after_flush(self):
        # Regression pin: a frame opened via monitor.frame(...) *after* a
        # flush() emitted a pending lazy sensor frame must count exactly
        # once in summary() — the flushed sensor-only frame and the new
        # inference frame are two distinct emissions, never three.
        monitor = EdgeMLMonitor("edge", sink=RingBufferSink(capacity=8))
        monitor.log_sensor("orientation", 90)     # opens a lazy frame
        flushed = monitor.flush()                 # emits it sensor-only
        assert flushed is not None and flushed.sensor_only
        with monitor.frame() as frame:            # re-entry after flush
            frame.scalars["label"] = 1.0
        summary = monitor.summary()
        assert summary["num_frames"] == 2
        assert summary["sensor_only_frames"] == 1
        assert [f.step for f in monitor.frames] == [0, 1]
        # A second flush has nothing pending: no phantom emission.
        assert monitor.flush() is None
        assert monitor.summary()["num_frames"] == 2

    def test_adopted_lazy_frame_counts_once(self):
        # The sibling path: sensor logs open the frame lazily and the
        # frame scope *adopts* it — one frame, not a sensor-only frame
        # plus an inference frame.
        monitor = EdgeMLMonitor("edge", sink=RingBufferSink(capacity=8))
        monitor.log_sensor("orientation", 90)
        with monitor.frame() as frame:
            frame.scalars["label"] = 1.0
        summary = monitor.summary()
        assert summary["num_frames"] == 1
        assert summary["sensor_only_frames"] == 0
        assert monitor.frames[0].sensors["orientation"] == 90


class TestDirectorySink:
    def test_streamed_log_loads(self, small_cnn, x_frames, tmp_path):
        monitor = EdgeMLMonitor(per_layer=True,
                                sink=DirectorySink(tmp_path / "log"))
        stream_frames(small_cnn, monitor, x_frames)
        monitor.close()
        log = EXrayLog.load(tmp_path / "log")
        assert len(log) == 4
        assert log.version == 2
        assert log.layer_names() == [n.name for n in small_cnn.nodes]

    def test_readable_mid_stream(self, small_cnn, x_frames, tmp_path):
        monitor = EdgeMLMonitor(sink=DirectorySink(tmp_path / "log"))
        stream_frames(small_cnn, monitor, x_frames[:2])
        # No close(): the stream is still open, yet everything emitted so
        # far is already visible to a reader.
        log = EXrayLog.load(tmp_path / "log")
        assert len(log) == 2
        stream_frames(small_cnn, EdgeMLMonitor(), x_frames[:1])  # unrelated
        monitor.close()
        assert len(EXrayLog.load(tmp_path / "log")) == 2

    def test_resident_frames_are_o1(self, small_cnn, rng, tmp_path):
        # The sink retains no frames: once the monitor closes a frame and
        # the loop drops its reference, nothing keeps it alive — resident
        # frame count stays O(1) no matter how long the stream runs.
        monitor = EdgeMLMonitor(per_layer=True,
                                sink=DirectorySink(tmp_path / "log"))
        interp = Interpreter(small_cnn)
        monitor.attach(interp)
        refs = []
        for _ in range(8):
            with monitor.frame(interp) as frame:
                interp.invoke(rng.normal(size=(1, 8, 8, 3)).astype(np.float32))
            refs.append(weakref.ref(frame))
        del frame
        gc.collect()
        assert sum(r() is not None for r in refs) == 0
        with pytest.raises(ValidationError, match="does not retain"):
            monitor.frames
        monitor.close()
        assert len(EXrayLog.load(tmp_path / "log")) == 8

    def test_emit_after_close_rejected(self, tmp_path):
        monitor = EdgeMLMonitor(sink=DirectorySink(tmp_path / "log"))
        monitor.close()
        with pytest.raises(ValidationError, match="closed"):
            with monitor.frame():
                pass

    def test_empty_stream_still_loads(self, tmp_path):
        monitor = EdgeMLMonitor(sink=DirectorySink(tmp_path / "log"))
        monitor.close()
        assert len(EXrayLog.load(tmp_path / "log")) == 0

    def test_save_log_seals_same_directory(self, small_cnn, x_frames, tmp_path):
        monitor = EdgeMLMonitor(sink=DirectorySink(tmp_path / "log"))
        stream_frames(small_cnn, monitor, x_frames)
        nbytes = save_log(monitor, tmp_path / "log")
        log = EXrayLog.load(tmp_path / "log")
        assert len(log) == 4 and log.log_bytes == nbytes

    def test_save_log_drains_to_other_directory(self, small_cnn, x_frames,
                                                tmp_path):
        monitor = EdgeMLMonitor(sink=DirectorySink(tmp_path / "a"))
        stream_frames(small_cnn, monitor, x_frames)
        save_log(monitor, tmp_path / "b")
        a, b = EXrayLog.load(tmp_path / "a"), EXrayLog.load(tmp_path / "b")
        assert len(a) == len(b) == 4
        np.testing.assert_array_equal(b.frames[2].tensor("model_output"),
                                      a.frames[2].tensor("model_output"))
        # Snapshotting to another directory must not kill the live stream.
        with monitor.frame():
            pass
        monitor.close()
        assert len(EXrayLog.load(tmp_path / "a")) == 5
        assert len(EXrayLog.load(tmp_path / "b")) == 4

    def test_save_log_prefers_directory_child_of_tee(self, small_cnn,
                                                     x_frames, tmp_path):
        # TeeSink(ring, directory): the directory child has the whole
        # stream, so save_log must drain it — not the ring's window.
        monitor = EdgeMLMonitor(
            sink=TeeSink(RingBufferSink(capacity=2),
                         DirectorySink(tmp_path / "full")))
        stream_frames(small_cnn, monitor, x_frames)
        save_log(monitor, tmp_path / "saved")
        assert len(EXrayLog.load(tmp_path / "saved")) == 4

    def test_begun_empty_stream_loadable_before_close(self, tmp_path):
        EdgeMLMonitor(sink=DirectorySink(tmp_path / "log"))  # no frames yet
        assert len(EXrayLog.load(tmp_path / "log")) == 0


class TestTeeSink:
    def test_fans_out_to_all_children(self, small_cnn, x_frames, tmp_path):
        ring = RingBufferSink(capacity=2)
        monitor = EdgeMLMonitor(
            sink=TeeSink(ring, DirectorySink(tmp_path / "log")))
        stream_frames(small_cnn, monitor, x_frames)
        monitor.close()
        assert len(ring.frames) == 2
        assert len(EXrayLog.load(tmp_path / "log")) == 4
        assert monitor.summary()["num_frames"] == 4

    def test_frames_delegates_to_first_retaining_child(self, tmp_path):
        ring = RingBufferSink(capacity=2)
        tee = TeeSink(DirectorySink(tmp_path / "log"), ring)
        monitor = EdgeMLMonitor(sink=tee)
        with monitor.frame():
            pass
        assert tee.frames == ring.frames

    def test_needs_children(self):
        with pytest.raises(ValidationError):
            TeeSink()


class TestLazyReader:
    def test_load_is_lazy(self, small_cnn, x_frames, tmp_path):
        monitor = EdgeMLMonitor(per_layer=True,
                                sink=DirectorySink(tmp_path / "log"))
        stream_frames(small_cnn, monitor, x_frames)
        monitor.close()
        log = EXrayLog.load(tmp_path / "log")
        assert log._frames is None          # nothing materialized on load
        first = next(log.iter_frames())
        assert "model_output" in first.tensors
        assert log._frames is None          # streaming does not cache
        assert len(log.frames) == 4         # the eager view still works
        assert log._frames is not None

    def test_iter_frames_without_tensors(self, small_cnn, x_frames, tmp_path):
        monitor = EdgeMLMonitor(per_layer=True,
                                sink=DirectorySink(tmp_path / "log"))
        stream_frames(small_cnn, monitor, x_frames)
        monitor.close()
        log = EXrayLog.load(tmp_path / "log")
        metas = list(log.iter_frames(load_tensors=False))
        assert len(metas) == 4
        assert all(not f.tensors for f in metas)
        assert all(f.latency_ms > 0 for f in metas)

    def test_random_access_frame(self, small_cnn, x_frames, tmp_path):
        monitor = EdgeMLMonitor(sink=DirectorySink(tmp_path / "log"))
        stream_frames(small_cnn, monitor, x_frames)
        monitor.close()
        log = EXrayLog.load(tmp_path / "log")
        np.testing.assert_allclose(log.frame(2).tensor("model_input"),
                                   x_frames[2], rtol=1e-6)

    def test_keys_filter_loads_only_requested_tensors(self, small_cnn,
                                                      x_frames, tmp_path):
        monitor = EdgeMLMonitor(per_layer=True,
                                sink=DirectorySink(tmp_path / "log"))
        stream_frames(small_cnn, monitor, x_frames)
        monitor.close()
        log = EXrayLog.load(tmp_path / "log")
        frame = log.frame(1, keys={"model_output"})
        assert set(frame.tensors) == {"model_output"}
        for f in log.iter_frames(keys={"model_input"}):
            assert set(f.tensors) == {"model_input"}
        # tensor_series goes through the filter and stays correct.
        series = log.tensor_series("model_output")
        assert len(series) == 4


def write_v1_log(root: Path, monitor: EdgeMLMonitor) -> None:
    """Write the pre-redesign v1 layout exactly as the old save_log did."""
    root.mkdir(parents=True, exist_ok=True)
    meta = {
        "name": monitor.name,
        "per_layer": monitor.per_layer,
        "num_frames": len(monitor.frames),
        "monitor_overhead_ms": monitor.monitor_overhead_ms,
        "version": 1,
    }

    def jsonable(value):
        if isinstance(value, (np.floating, np.integer)):
            return float(value)
        if isinstance(value, np.ndarray):
            return value.tolist()
        return value

    frames_doc = []
    arrays = {}
    for frame in monitor.frames:
        frames_doc.append({
            "step": frame.step,
            "latency_ms": frame.latency_ms,
            "wall_ms": frame.wall_ms,
            "memory_mb": frame.memory_mb,
            "scalars": frame.scalars,
            "sensors": {k: jsonable(v) for k, v in frame.sensors.items()},
            "tensor_keys": sorted(frame.tensors),
            "layer_latency_ms": frame.layer_latency_ms,
            "layer_ops": frame.layer_ops,
        })
        for key, value in frame.tensors.items():
            arrays[f"{frame.step:06d}::{key}"] = value
    (root / "meta.json").write_text(json.dumps(meta, indent=2))
    (root / "frames.json").write_text(json.dumps(frames_doc))
    if arrays:
        np.savez_compressed(root / "tensors.npz", **arrays)


class TestFormatCompat:
    def test_v1_log_still_loads(self, small_cnn, x_frames, tmp_path):
        monitor = EdgeMLMonitor(per_layer=True)
        stream_frames(small_cnn, monitor, x_frames)
        write_v1_log(tmp_path / "v1", monitor)
        log = EXrayLog.load(tmp_path / "v1")
        assert log.version == 1
        assert len(log) == 4
        assert log.layer_names() == [n.name for n in small_cnn.nodes]
        np.testing.assert_array_equal(
            log.frames[1].tensor("model_output"),
            monitor.frames[1].tensors["model_output"])

    def test_v1_iteration_is_lazy(self, small_cnn, x_frames, tmp_path):
        monitor = EdgeMLMonitor(per_layer=True)
        stream_frames(small_cnn, monitor, x_frames)
        write_v1_log(tmp_path / "v1", monitor)
        log = EXrayLog.load(tmp_path / "v1")
        count = sum(1 for _ in log.iter_frames())
        assert count == 4 and log._frames is None

    def test_sensor_canonicalization_parity(self, small_cnn, x_frames,
                                            tmp_path):
        # Numpy scalars/arrays logged as sensor values come back as plain
        # floats/lists after any save/load path — pin the canonicalization
        # across MemorySink -> DirectorySink -> EXrayLog.load.
        monitor = EdgeMLMonitor()
        monitor.log_sensor("np_scalar", np.float32(0.25))
        monitor.log_sensor("np_int", np.int64(3))
        monitor.log_sensor("np_array", np.arange(3, dtype=np.float64))
        monitor.log_sensor("plain", "landscape")
        stream_frames(small_cnn, monitor, x_frames[:1])
        save_log(monitor, tmp_path / "log")
        sensors = EXrayLog.load(tmp_path / "log").frames[0].sensors
        assert sensors["np_scalar"] == 0.25
        assert isinstance(sensors["np_scalar"], float)
        assert sensors["np_int"] == 3.0 and isinstance(sensors["np_int"], float)
        assert sensors["np_array"] == [0.0, 1.0, 2.0]
        assert isinstance(sensors["np_array"], list)
        assert sensors["plain"] == "landscape"

    def test_missing_v2_shard_names_dir_and_key(self, small_cnn, x_frames,
                                                tmp_path):
        monitor = EdgeMLMonitor(sink=DirectorySink(tmp_path / "log"))
        stream_frames(small_cnn, monitor, x_frames[:2])
        monitor.close()
        (tmp_path / "log" / "tensors" / "000001.npz").unlink()
        log = EXrayLog.load(tmp_path / "log")   # lazy: no error yet
        with pytest.raises(ValidationError, match="model_input"):
            log.frame(1)
        with pytest.raises(ValidationError, match=str(tmp_path / "log")):
            list(log.iter_frames())

    def test_missing_v1_npz_names_dir_and_key(self, small_cnn, x_frames,
                                              tmp_path):
        monitor = EdgeMLMonitor()
        stream_frames(small_cnn, monitor, x_frames[:1])
        write_v1_log(tmp_path / "v1", monitor)
        (tmp_path / "v1" / "tensors.npz").unlink()
        log = EXrayLog.load(tmp_path / "v1")
        with pytest.raises(ValidationError, match="tensors.npz is missing"):
            log.frames

    def test_truncated_v1_npz_names_missing_key(self, small_cnn, x_frames,
                                                tmp_path):
        monitor = EdgeMLMonitor()
        stream_frames(small_cnn, monitor, x_frames[:1])
        write_v1_log(tmp_path / "v1", monitor)
        # Rewrite the archive without one listed entry (a truncated log).
        with np.load(tmp_path / "v1" / "tensors.npz") as npz:
            arrays = {k: npz[k] for k in npz.files
                      if not k.endswith("model_output")}
        np.savez_compressed(tmp_path / "v1" / "tensors.npz", **arrays)
        log = EXrayLog.load(tmp_path / "v1")
        with pytest.raises(ValidationError, match="model_output"):
            log.frames


class TestStreamedValidationParity:
    """Acceptance: validation is sink-agnostic — a streamed DirectorySink
    log produces the identical report and layer diffs as the eager
    MemorySink log of the same run."""

    def run_pair(self, small_cnn, rng, tmp_path):
        x = rng.normal(size=(3, 8, 8, 3)).astype(np.float32)
        ref_mon = EdgeMLMonitor("reference", per_layer=True)
        stream_frames(small_cnn, ref_mon, x)
        # ONE edge run teed into both sinks: the eager and the streamed
        # log describe the same frames (per-layer wall-clock included).
        memory = MemorySink()
        edge = EdgeMLMonitor("edge", per_layer=True,
                             sink=TeeSink(memory,
                                          DirectorySink(tmp_path / "edge")))
        # A scale bug so the per-layer analysis has real drift to localize.
        stream_frames(small_cnn, edge, x, scale=1.5)
        edge.close()
        mem_log = EXrayLog("edge", True, memory.frames)
        return (mem_log,
                EXrayLog.load(tmp_path / "edge"),
                EXrayLog.from_monitor(ref_mon))

    def test_layerdiff_identical(self, small_cnn, rng, tmp_path):
        mem_log, dir_log, ref_log = self.run_pair(small_cnn, rng, tmp_path)
        assert per_layer_diff(mem_log, ref_log) == per_layer_diff(dir_log, ref_log)

    def test_session_report_identical(self, small_cnn, rng, tmp_path):
        mem_log, dir_log, ref_log = self.run_pair(small_cnn, rng, tmp_path)
        mem_report = DebugSession(mem_log, ref_log).run(
            always_run_assertions=True)
        dir_report = DebugSession(dir_log, ref_log).run(
            always_run_assertions=True)
        assert mem_report.render() == dir_report.render()
        assert mem_report.layer_diffs == dir_report.layer_diffs
        assert [a.passed for a in mem_report.assertions] == \
            [a.passed for a in dir_report.assertions]
