"""Deployment-sweep tests: variant parsing, parallel/serial equivalence."""

import numpy as np
import pytest

from repro.util.errors import ValidationError
from repro.validate.sweep import (
    DEFAULT_IMAGE_VARIANTS,
    SweepVariant,
    build_reference_log,
    coerce_override_value,
    parse_variant_spec,
    run_sweep,
    run_variant,
)
from repro.zoo import playback_data

MODEL = "micro_mobilenet_v1"


class TestVariantSpec:
    def test_name_only(self):
        v = parse_variant_spec("clean")
        assert v.name == "clean" and v.overrides == {}
        assert v.stage == "mobile" and v.resolver == "optimized"

    def test_overrides_and_fields(self):
        v = parse_variant_spec(
            "bgr:channel_order=bgr,rotation_k=1,stage=quantized,"
            "resolver=reference,device=pixel3_cpu")
        assert v.overrides == {"channel_order": "bgr", "rotation_k": 1}
        assert v.stage == "quantized" and v.resolver == "reference"
        assert v.device == "pixel3_cpu"

    def test_integer_values_parsed(self):
        assert parse_variant_spec("r:rotation_k=2").overrides["rotation_k"] == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            parse_variant_spec(":channel_order=bgr")

    def test_missing_equals_rejected(self):
        with pytest.raises(ValidationError):
            parse_variant_spec("v:nonsense")

    def test_bad_stage_rejected(self):
        with pytest.raises(ValidationError):
            parse_variant_spec("v:stage=folded")

    def test_bad_device_rejected(self):
        with pytest.raises(ValidationError):
            parse_variant_spec("v:device=pixel9")

    def test_bad_kernel_bugs_rejected(self):
        with pytest.raises(ValidationError):
            parse_variant_spec("v:kernel_bugs=all-of-them")

    def test_bracketed_value_not_split(self):
        v = parse_variant_spec("n:normalization=[0,1]")
        assert v.overrides == {"normalization": "[0,1]"}

    def test_target_size_value_coerced(self):
        v = parse_variant_spec("s:target_size=[16,16]")
        assert v.overrides == {"target_size": [16, 16]}
        assert coerce_override_value("target_size", "16x16") == [16, 16]

    def test_bad_resolver_rejected(self):
        with pytest.raises(ValidationError):
            parse_variant_spec("v:resolver=turbo")

    def test_registered_resolver_becomes_sweepable(self):
        # The variant check consults the live registry, not a hardcoded
        # name list: registering a resolver makes it sweepable immediately.
        from repro.runtime.resolver import RESOLVERS, OpResolver, register_resolver
        with pytest.raises(ValidationError):
            SweepVariant("v", resolver="custom_opt").check()
        register_resolver("custom_opt", OpResolver)
        try:
            v = parse_variant_spec("v:resolver=custom_opt")
            assert v.resolver == "custom_opt"
        finally:
            del RESOLVERS["custom_opt"]
        with pytest.raises(ValidationError):
            SweepVariant("v", resolver="custom_opt").check()

    def test_bad_target_size_rejected(self):
        with pytest.raises(ValidationError):
            coerce_override_value("target_size", "huge")


class TestPlaybackData:
    def test_deterministic(self):
        a, la = playback_data(MODEL, 6, "t")
        b, lb = playback_data(MODEL, 6, "t")
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(la, lb)

    def test_detection_labels_dropped(self):
        _, labels = playback_data("ssd_lite", 2, "t")
        assert labels is None


class TestRunVariant:
    def test_clean_variant_healthy(self):
        result = run_variant(MODEL, SweepVariant("clean"), frames=12)
        assert result.healthy and result.num_issues == 0
        assert result.mean_latency_ms > 0
        assert result.peak_memory_mb > 0

    def test_bug_variant_diagnosed(self):
        result = run_variant(
            MODEL, SweepVariant("rot", {"rotation_k": 1}), frames=12)
        assert not result.healthy
        assert any("rotated" in a.diagnosis for a in result.report.issues)

    def test_unknown_override_rejected(self):
        with pytest.raises(ValidationError):
            run_variant(MODEL, SweepVariant("typo", {"chanel_order": "bgr"}),
                        frames=2)

    def test_shared_reference_log_matches_private_run(self):
        ref_log = build_reference_log(MODEL, 8)
        shared = run_variant(MODEL, SweepVariant("clean"), frames=8,
                             ref_log=ref_log)
        private = run_variant(MODEL, SweepVariant("clean"), frames=8)
        assert shared.report.render() == private.report.render()


class TestRunSweep:
    def test_parallel_matches_serial_exactly(self):
        serial = run_sweep(MODEL, DEFAULT_IMAGE_VARIANTS, frames=12,
                           executor="serial")
        parallel = run_sweep(MODEL, DEFAULT_IMAGE_VARIANTS, frames=12,
                             executor="process")
        assert len(parallel.results) == len(DEFAULT_IMAGE_VARIANTS) >= 4
        for ours, theirs in zip(serial.results, parallel.results):
            assert ours.variant == theirs.variant
            assert ours.report.render() == theirs.report.render()
            assert ours.mean_latency_ms == theirs.mean_latency_ms
            assert ours.peak_memory_mb == theirs.peak_memory_mb
        assert serial.render() == parallel.render()

    def test_thread_executor_matches_serial(self):
        variants = [SweepVariant("clean"),
                    SweepVariant("bgr", {"channel_order": "bgr"})]
        serial = run_sweep(MODEL, variants, frames=8, executor="serial")
        threaded = run_sweep(MODEL, variants, frames=8, executor="thread")
        assert serial.render() == threaded.render()

    def test_bug_lineup_flags_rot90_not_clean(self):
        report = run_sweep(MODEL, DEFAULT_IMAGE_VARIANTS, frames=12,
                           executor="process")
        assert report.result("clean").healthy
        assert not report.result("rot90").healthy
        assert not report.healthy

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            run_sweep(MODEL, [SweepVariant("a"), SweepVariant("a")], frames=2)

    def test_empty_variants_rejected(self):
        with pytest.raises(ValidationError):
            run_sweep(MODEL, [], frames=2)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValidationError):
            run_sweep(MODEL, [SweepVariant("a")], frames=2, executor="gpu")

    def test_nonpositive_workers_rejected(self):
        for bad in (0, -1):
            with pytest.raises(ValidationError):
                run_sweep(MODEL, [SweepVariant("a")], frames=2, workers=bad)

    def test_unknown_result_name_rejected(self):
        report = run_sweep(MODEL, [SweepVariant("clean")], frames=4,
                           executor="serial")
        with pytest.raises(ValidationError):
            report.result("nope")

    def test_render_mentions_every_variant(self):
        report = run_sweep(MODEL, DEFAULT_IMAGE_VARIANTS[:2], frames=8,
                           executor="serial")
        text = report.render()
        for variant in DEFAULT_IMAGE_VARIANTS[:2]:
            assert variant.name in text
        assert "sweep verdict" in text
