"""Triage-engine tests: fingerprints, distances, clustering, root causes."""

import pytest

from repro.validate.fingerprint import (
    DriftFingerprint,
    cluster_fingerprints,
    fingerprint_distance,
    fingerprint_report,
)
from repro.validate.layerdiff import LayerDiff
from repro.validate.session import ValidationReport
from repro.validate.assertions import AssertionResult
from repro.validate.sweep import SweepVariant, run_sweep
from repro.validate.triage import (
    CAUSE_HEALTHY,
    CAUSE_KERNEL,
    CAUSE_PERFORMANCE,
    CAUSE_PREPROCESSING,
    CAUSE_STAGE,
    root_cause_hypothesis,
    triage_sweep,
)


def make_fp(name, drift, flagged=(), failed=(), degenerate=(), ops=None):
    schedule = tuple((f"layer{i}", (ops or {}).get(i, "conv2d"))
                     for i in range(len(drift)))
    flagged = tuple(flagged)
    return DriftFingerprint(
        variant=name, schedule=schedule, drift=tuple(drift),
        first_flagged=flagged[0] if flagged else -1, flagged=flagged,
        failed_checks=frozenset(failed), degenerate=frozenset(degenerate))


class TestRootCauseHypothesis:
    def test_healthy_empty(self):
        cause, _ = root_cause_hypothesis(make_fp("v", []))
        assert cause == CAUSE_HEALTHY

    def test_healthy_low_drift(self):
        cause, _ = root_cause_hypothesis(make_fp("v", [0.01, 0.02, 0.01]))
        assert cause == CAUSE_HEALTHY

    def test_input_layer_drift_is_preprocessing(self):
        fp = make_fp("v", [0.4, 0.35, 0.3], flagged=(0,))
        cause, detail = root_cause_hypothesis(fp)
        assert cause == CAUSE_PREPROCESSING
        assert "input-layer drift" in detail

    def test_preprocess_assertion_is_preprocessing(self):
        fp = make_fp("v", [0.05, 0.05], failed=("channel_arrangement",))
        cause, detail = root_cause_hypothesis(fp)
        assert cause == CAUSE_PREPROCESSING
        assert "channel_arrangement" in detail

    def test_internal_jump_is_kernel_and_names_op(self):
        fp = make_fp("v", [0.01, 0.5, 0.45], flagged=(1,),
                     failed=("quantization_health",),
                     ops={1: "depthwise_conv2d"})
        cause, detail = root_cause_hypothesis(fp)
        assert cause == CAUSE_KERNEL
        assert "depthwise_conv2d" in detail

    def test_uniform_drift_is_stage_mismatch(self):
        # A flat profile trips the jump detector at layer 0 (anything beats
        # the near-zero initial running level), so mirror the real pipeline
        # and flag index 0: uniformity must still win over "input drift".
        fp = make_fp("v", [0.3, 0.31, 0.29, 0.3], flagged=(0,))
        cause, detail = root_cause_hypothesis(fp)
        assert cause == CAUSE_STAGE
        assert "uniform" in detail

    def test_degenerate_layers_do_not_sway_hypothesis(self):
        # One constant-reference layer reporting absolute-unit rMSE 5.0
        # must neither break the uniform-drift rule nor unhealth a quiet
        # variant.
        fp = make_fp("v", [0.3, 5.0, 0.31, 0.3], flagged=(0,), degenerate=(1,))
        assert root_cause_hypothesis(fp)[0] == CAUSE_STAGE
        quiet = make_fp("q", [0.02, 5.0, 0.03], degenerate=(1,))
        assert root_cause_hypothesis(quiet)[0] == CAUSE_HEALTHY

    def test_decaying_input_drift_is_not_stage_mismatch(self):
        # An input bug that washes through (decaying profile) must stay
        # classified as preprocessing despite every layer drifting.
        fp = make_fp("v", [0.4, 0.2, 0.1, 0.05], flagged=(0,))
        cause, _ = root_cause_hypothesis(fp)
        assert cause == CAUSE_PREPROCESSING

    def test_budget_only_failure_is_performance(self):
        fp = make_fp("v", [0.01, 0.01], failed=("latency_budget",))
        cause, _ = root_cause_hypothesis(fp)
        assert cause == CAUSE_PERFORMANCE

    def test_accuracy_drop_without_drift_is_not_healthy(self):
        # Metric degraded but nothing localized: triage must not file the
        # variant under 'healthy' just because per-layer drift is quiet.
        from dataclasses import replace
        fp = replace(make_fp("v", [0.01, 0.02]), accuracy_degraded=True)
        cause, detail = root_cause_hypothesis(fp)
        assert cause != CAUSE_HEALTHY
        assert "accuracy degraded" in detail


class TestFingerprintDistance:
    def test_identical_is_zero(self):
        a = make_fp("a", [0.1, 0.5, 0.2], flagged=(1,), failed=("x",))
        b = make_fp("b", [0.1, 0.5, 0.2], flagged=(1,), failed=("x",))
        assert fingerprint_distance(a, b) == pytest.approx(0.0)

    def test_scaled_same_profile_stays_close(self):
        a = make_fp("a", [0.01, 0.5, 0.4], flagged=(1,))
        b = make_fp("b", [0.02, 0.9, 0.7], flagged=(1,))
        c = make_fp("c", [0.5, 0.01, 0.01], flagged=(0,))
        assert fingerprint_distance(a, b) < fingerprint_distance(a, c)

    def test_empty_vs_drifting_is_far(self):
        healthy = make_fp("h", [])
        broken = make_fp("b", [0.4, 0.5], flagged=(0,), failed=("x",))
        assert fingerprint_distance(healthy, broken) > 0.5
        assert fingerprint_distance(healthy, make_fp("h2", [])) == 0.0

    def test_empty_with_disjoint_symptoms_do_not_cluster(self):
        # Without layer data, disjoint failure symptoms must still keep
        # variants apart (symptoms stand in for the drift component).
        perf = make_fp("p", [], failed=("latency_budget",))
        prep = make_fp("q", [], failed=("channel_arrangement",))
        assert fingerprint_distance(perf, prep) > 0.3
        assert cluster_fingerprints([perf, prep]) != [[perf, prep]]
        assert len(cluster_fingerprints([perf, prep])) == 2

    def test_degenerate_layers_excluded_from_drift(self):
        # Layer 1 is degenerate in `a`: its absolute-unit error must not
        # separate two otherwise-identical fingerprints.
        a = make_fp("a", [0.1, 9.9, 0.2], degenerate=(1,))
        b = make_fp("b", [0.1, 0.0, 0.2], degenerate=(1,))
        assert fingerprint_distance(a, b) == pytest.approx(0.0)


class TestFingerprintReport:
    def test_from_validation_report(self):
        diffs = [LayerDiff(0, "stem", "conv2d", 0.01),
                 LayerDiff(1, "dw1", "depthwise_conv2d", 0.6),
                 LayerDiff(2, "head", "dense", 0.5, degenerate_ref=True)]
        report = ValidationReport(
            accuracy=None, layer_diffs=diffs, flagged_layers=[diffs[1]],
            assertions=[AssertionResult("quantization_health", False, "bad")])
        fp = fingerprint_report("v", report)
        assert fp.schedule == (("stem", "conv2d"),
                               ("dw1", "depthwise_conv2d"),
                               ("head", "dense"))
        assert fp.drift == (0.01, 0.6, 0.5)
        assert fp.first_flagged == 1
        assert fp.first_flagged_op == "depthwise_conv2d"
        assert fp.failed_checks == frozenset({"quantization_health"})
        assert fp.degenerate == frozenset({2})

    def test_healthy_report_yields_empty_fingerprint(self):
        fp = fingerprint_report("v", ValidationReport(accuracy=None))
        assert fp.empty and fp.healthy
        assert fp.first_flagged_op is None

    def test_degraded_accuracy_carries_into_fingerprint(self):
        from repro.validate.accuracy import AccuracyReport
        degraded = AccuracyReport(edge_metric=0.5, ref_metric=0.9,
                                  tolerance=0.02)
        fp = fingerprint_report("v", ValidationReport(accuracy=degraded))
        assert fp.accuracy_degraded and not fp.healthy


class TestClustering:
    def test_same_signature_joins_one_cluster(self):
        fps = [make_fp("a", [0.01, 0.5], flagged=(1,)),
               make_fp("b", [0.01, 0.52], flagged=(1,)),
               make_fp("h", [])]
        clusters = cluster_fingerprints(fps)
        assert [len(c) for c in clusters] == [2, 1]

    def test_deterministic_order(self):
        fps = [make_fp("a", [0.4, 0.4], flagged=(0,)),
               make_fp("b", []),
               make_fp("c", [0.4, 0.41], flagged=(0,))]
        once = cluster_fingerprints(fps)
        twice = cluster_fingerprints(list(fps))
        assert [[m.variant for m in c] for c in once] == \
            [[m.variant for m in c] for c in twice] == [["a", "c"], ["b"]]


class TestTriageSweep:
    """End-to-end: the Figure-6 rule applied across a real fleet sweep."""

    def test_kernel_bug_presets_cluster_together(self):
        variants = [
            SweepVariant("clean"),
            SweepVariant("dwconv_a", stage="quantized",
                         kernel_bugs="paper-optimized"),
            SweepVariant("dwconv_b", stage="quantized",
                         kernel_bugs="paper-optimized", device="pixel3_cpu"),
            SweepVariant("bgr", {"channel_order": "bgr"}),
        ]
        report = run_sweep("micro_mobilenet_v2", variants, frames=12,
                           executor="process")
        triage = triage_sweep(report)
        report.triage = triage

        # Same-preset variants land in the same cluster, and the cluster
        # label names the first drifting op class (the injected root cause).
        a, b = triage.cluster_of("dwconv_a"), triage.cluster_of("dwconv_b")
        assert a is b
        assert a.cause == CAUSE_KERNEL
        assert "depthwise_conv2d" in a.label

        # The clean and preprocessing-bug variants triage elsewhere.
        assert triage.cluster_of("clean").cause == CAUSE_HEALTHY
        assert triage.cluster_of("bgr").cause == CAUSE_PREPROCESSING
        assert triage.cluster_of("bgr") is not a

        # The attached cluster table renders inside the sweep report.
        text = report.render()
        assert "root-cause triage" in text
        assert "depthwise_conv2d" in text

    def test_skipped_variants_reported_unfingerprinted(self):
        report = run_sweep(
            "micro_mobilenet_v1",
            [SweepVariant("rot", {"rotation_k": 1}), SweepVariant("clean")],
            frames=12, executor="serial", max_failures=1)
        triage = triage_sweep(report)
        assert triage.unfingerprinted == ["clean"]
        with pytest.raises(KeyError):
            triage.cluster_of("clean")
        assert "not fingerprinted" in triage.render()
