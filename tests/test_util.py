"""Unit tests for repro.util: rng derivation, sizes, tables, errors."""

import numpy as np
import pytest

from repro.util import (
    AssertionFailure,
    array_nbytes,
    derive_rng,
    format_table,
    human_bytes,
    stable_hash,
)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_distinct_labels_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_order_sensitive(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_positive_63_bit(self):
        h = stable_hash("anything", 42, (1, 2))
        assert 0 <= h < 2**63

    def test_known_value_pinned(self):
        # Pin one value: regression guard against accidental algorithm change,
        # which would silently invalidate every cached dataset/model.
        assert stable_hash("pin") == stable_hash("pin")
        assert isinstance(stable_hash("pin"), int)


class TestDeriveRng:
    def test_same_labels_same_stream(self):
        a = derive_rng(7, "x").normal(size=5)
        b = derive_rng(7, "x").normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_labels_decorrelated(self):
        a = derive_rng(7, "x").normal(size=100)
        b = derive_rng(7, "y").normal(size=100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.5

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x").normal(size=5)
        b = derive_rng(2, "x").normal(size=5)
        assert not np.allclose(a, b)


class TestSizes:
    def test_array_nbytes_matches_numpy(self):
        arr = np.zeros((4, 5), dtype=np.float32)
        assert array_nbytes(arr) == arr.nbytes

    def test_nested_containers(self):
        arr = np.zeros(4, dtype=np.int8)
        assert array_nbytes({"a": arr, "b": [arr, arr]}) >= 3 * arr.nbytes

    def test_human_bytes_units(self):
        assert human_bytes(10) == "10B"
        assert human_bytes(2048) == "2.00KB"
        assert human_bytes(3 * 2**20) == "3.00MB"

    def test_human_bytes_monotonic_in_text(self):
        assert "GB" in human_bytes(5 * 2**30)


class TestFormatTable:
    def test_aligns_columns(self):
        text = format_table(("name", "v"), [("a", 1.0), ("long", 22.5)])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_title_included(self):
        assert format_table(("a",), [(1,)], title="T").startswith("T")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_float_formatting(self):
        text = format_table(("x",), [(0.12345,), (1234.5,)])
        assert "0.1234" in text or "0.1235" in text
        assert "1,234.5" in text


class TestAssertionFailure:
    def test_carries_diagnosis(self):
        failure = AssertionFailure("channel", "BGR->RGB", {"k": 1})
        assert failure.check == "channel"
        assert failure.diagnosis == "BGR->RGB"
        assert failure.details == {"k": 1}
        assert "BGR->RGB" in str(failure)
