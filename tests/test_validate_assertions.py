"""Built-in assertion tests: each catches its bug and passes on clean runs."""

import numpy as np
import pytest

from repro.instrument import EXrayLog, EdgeMLMonitor
from repro.util.errors import AssertionFailure, ValidationError
from repro.validate import (
    ChannelArrangementAssertion,
    FunctionAssertion,
    LatencyBudgetAssertion,
    MemoryBudgetAssertion,
    NormalizationRangeAssertion,
    OrientationAssertion,
    QuantizationHealthAssertion,
    ResizeFunctionAssertion,
    SpectrogramNormalizationAssertion,
    StragglerLatencyAssertion,
    ValidationContext,
    default_assertions,
)
from repro.validate.layerdiff import LayerDiff


def log_with_inputs(inputs, outputs=None, sensor=None):
    """Build an in-memory log whose frames carry the given model inputs."""
    monitor = EdgeMLMonitor(name="t")
    for i, x in enumerate(inputs):
        monitor.on_inf_start()
        monitor.log("model_input", np.asarray(x, dtype=np.float32))
        if sensor is not None:
            monitor.log("sensor_frame", np.asarray(sensor[i]))
        monitor.on_inf_stop()
        if outputs is not None:
            monitor.frames[-1].tensors["model_output"] = np.asarray(outputs[i])
    return EXrayLog.from_monitor(monitor)


def ctx_for(edge_inputs, ref_inputs, diffs=(), edge_outputs=None,
            sensor=None):
    edge = log_with_inputs(edge_inputs, edge_outputs, sensor)
    ref = log_with_inputs(ref_inputs)
    return ValidationContext(edge, ref, list(diffs))


@pytest.fixture
def base_inputs(rng):
    return rng.uniform(-1, 1, (4, 8, 8, 3))


class TestChannelAssertion:
    def test_passes_on_match(self, base_inputs):
        result = ChannelArrangementAssertion().run(
            ctx_for(base_inputs, base_inputs))
        assert result.passed

    def test_catches_bgr(self, base_inputs):
        result = ChannelArrangementAssertion().run(
            ctx_for(base_inputs[..., ::-1], base_inputs))
        assert not result.passed and result.diagnosis == "BGR->RGB"

    def test_other_difference_not_misdiagnosed(self, base_inputs, rng):
        noise = base_inputs + rng.normal(0, 0.5, base_inputs.shape)
        result = ChannelArrangementAssertion().run(ctx_for(noise, base_inputs))
        assert result.passed  # differs, but not a channel permutation

    def test_shape_mismatch_fails(self, base_inputs):
        result = ChannelArrangementAssertion().run(
            ctx_for(base_inputs[:, :4], base_inputs))
        assert not result.passed


class TestNormalizationAssertion:
    def test_passes_on_match(self, base_inputs):
        assert NormalizationRangeAssertion().run(
            ctx_for(base_inputs, base_inputs)).passed

    def test_names_scheme_pair(self, rng):
        ref = rng.uniform(-1, 1, (4, 8, 8, 3))          # [-1,1] expected
        edge = (ref + 1.0) / 2.0                         # app produced [0,1]
        result = NormalizationRangeAssertion().run(ctx_for(edge, ref))
        assert not result.passed
        assert "[0,1]" in result.diagnosis and "[-1,1]" in result.diagnosis

    def test_unexplained_difference_passes(self, base_inputs, rng):
        shuffled = rng.permutation(base_inputs.ravel()).reshape(base_inputs.shape)
        result = NormalizationRangeAssertion().run(ctx_for(shuffled, base_inputs))
        assert result.passed  # not an affine rescale: someone else's bug


class TestOrientationAssertion:
    def test_passes_on_match(self, base_inputs):
        assert OrientationAssertion().run(ctx_for(base_inputs, base_inputs)).passed

    def test_catches_rotation(self, rng):
        # Structured images (gradient) so rotations are distinguishable.
        grad = np.linspace(0, 1, 8)[None, :, None, None]
        ref = np.broadcast_to(grad, (4, 8, 8, 3)).transpose(0, 2, 1, 3)
        edge = np.rot90(ref, k=1, axes=(1, 2))
        result = OrientationAssertion().run(ctx_for(edge, ref))
        assert not result.passed and "rotated" in result.diagnosis


class TestResizeAssertion:
    def test_identifies_method(self, rng):
        from repro.pipelines.preprocess import ImagePreprocessConfig
        sensor = rng.integers(0, 255, (2, 80, 80, 3)).astype(np.uint8)
        bad = ImagePreprocessConfig((16, 16), resize_method="bilinear")
        edge_inputs = bad.apply(sensor)
        ref_inputs = ImagePreprocessConfig((16, 16)).apply(sensor)
        ctx = ctx_for(list(edge_inputs), list(ref_inputs), sensor=sensor)
        result = ResizeFunctionAssertion(expected="area").run(ctx)
        assert not result.passed and "bilinear" in result.diagnosis

    def test_passes_on_correct_method(self, rng):
        from repro.pipelines.preprocess import ImagePreprocessConfig
        sensor = rng.integers(0, 255, (2, 80, 80, 3)).astype(np.uint8)
        inputs = ImagePreprocessConfig((16, 16)).apply(sensor)
        ctx = ctx_for(list(inputs), list(inputs), sensor=sensor)
        assert ResizeFunctionAssertion(expected="area").run(ctx).passed

    def test_needs_sensor_frame(self, base_inputs):
        with pytest.raises(ValidationError):
            ResizeFunctionAssertion().check(ctx_for(base_inputs, base_inputs))


class TestQuantizationHealthAssertion:
    def diffs(self, errors, op="depthwise_conv2d"):
        return [LayerDiff(i, f"l{i}", op, e) for i, e in enumerate(errors)]

    def test_passes_on_small_drift(self, base_inputs, rng):
        out = rng.normal(size=(4, 10))
        ctx = ctx_for(base_inputs, base_inputs,
                      self.diffs([0.01, 0.02, 0.03]), edge_outputs=out)
        assert QuantizationHealthAssertion().run(ctx).passed

    def test_flags_jump_with_op_name(self, base_inputs, rng):
        out = rng.normal(size=(4, 10))
        ctx = ctx_for(base_inputs, base_inputs,
                      self.diffs([0.01, 0.45, 0.4]), edge_outputs=out)
        result = QuantizationHealthAssertion().run(ctx)
        assert not result.passed and "depthwise_conv2d" in result.diagnosis

    def test_constant_output_reported(self, base_inputs):
        out = np.ones((4, 10))
        ctx = ctx_for(base_inputs, base_inputs, [], edge_outputs=out)
        result = QuantizationHealthAssertion().run(ctx)
        assert not result.passed and "constant" in result.diagnosis

    def test_defers_to_preprocessing(self, base_inputs, rng):
        """Input-level drift means preprocessing, not model ops (§3.4)."""
        out = rng.normal(size=(4, 10))
        edge_inputs = base_inputs + 1.0
        ctx = ctx_for(edge_inputs, base_inputs,
                      self.diffs([0.5, 0.6]), edge_outputs=out)
        result = QuantizationHealthAssertion().run(ctx)
        assert result.passed and "preprocessing" in result.diagnosis


class TestBudgetAssertions:
    def make_log(self, latency_ms, memory_mb):
        monitor = EdgeMLMonitor()
        monitor.on_inf_start()
        frame = monitor.on_inf_stop()
        frame.latency_ms = latency_ms
        frame.memory_mb = memory_mb
        return EXrayLog.from_monitor(monitor)

    def test_latency_within(self, base_inputs):
        ctx = ValidationContext(self.make_log(10, 1), self.make_log(1, 1))
        assert LatencyBudgetAssertion(50).run(ctx).passed

    def test_latency_exceeded(self):
        ctx = ValidationContext(self.make_log(100, 1), self.make_log(1, 1))
        result = LatencyBudgetAssertion(50).run(ctx)
        assert not result.passed and "100.0ms" in result.diagnosis

    def test_memory_exceeded(self):
        ctx = ValidationContext(self.make_log(1, 200), self.make_log(1, 1))
        assert not MemoryBudgetAssertion(64).run(ctx).passed


class TestStragglerAssertion:
    def make_log(self, layer_ms):
        monitor = EdgeMLMonitor()
        monitor.on_inf_start()
        frame = monitor.on_inf_stop()
        frame.layer_latency_ms = dict(layer_ms)
        frame.layer_ops = {k: "conv2d" for k in layer_ms}
        return EXrayLog.from_monitor(monitor)

    def test_flags_dominant_layer(self):
        log = self.make_log({f"l{i}": 1.0 for i in range(9)} | {"slow": 100.0})
        ctx = ValidationContext(log, log)
        result = StragglerLatencyAssertion().run(ctx)
        assert not result.passed and "slow" in result.diagnosis

    def test_uniform_profile_passes(self):
        log = self.make_log({f"l{i}": 1.0 for i in range(10)})
        assert StragglerLatencyAssertion().run(
            ValidationContext(log, log)).passed


class TestSpectrogramAssertion:
    def test_catches_convention_mismatch(self, rng):
        from repro.pipelines.preprocess import SPEC_NORMALIZATIONS, spectrogram
        spec = spectrogram(rng.normal(size=(4, 4000)))
        edge = SPEC_NORMALIZATIONS["per_utterance"].apply(spec)[..., None]
        ref = SPEC_NORMALIZATIONS["global_db"].apply(spec)[..., None]
        ctx = ctx_for(list(edge), list(ref))
        result = SpectrogramNormalizationAssertion().run(ctx)
        assert not result.passed and "normalization" in result.diagnosis

    def test_passes_on_match(self, rng):
        from repro.pipelines.preprocess import SPEC_NORMALIZATIONS, spectrogram
        spec = spectrogram(rng.normal(size=(4, 4000)))
        feats = SPEC_NORMALIZATIONS["global_db"].apply(spec)[..., None]
        assert SpectrogramNormalizationAssertion().run(
            ctx_for(list(feats), list(feats))).passed


class TestAssertionFramework:
    def test_function_assertion_pass(self, base_inputs):
        result = FunctionAssertion(lambda ctx: "all good", name="custom").run(
            ctx_for(base_inputs, base_inputs))
        assert result.passed and result.check == "custom"

    def test_function_assertion_failure_captured(self, base_inputs):
        def failing(ctx):
            raise AssertionFailure("custom", "lane offset too large", {"px": 9})

        result = FunctionAssertion(failing).run(ctx_for(base_inputs, base_inputs))
        assert not result.passed
        assert result.diagnosis == "lane offset too large"
        assert result.details == {"px": 9}

    def test_default_suites_by_task(self):
        for task in ("classification", "detection", "segmentation", "speech",
                     "text"):
            suite = default_assertions(task)
            assert suite, task
        with pytest.raises(ValidationError):
            default_assertions("astrology")

    def test_result_render(self, base_inputs):
        result = ChannelArrangementAssertion().run(
            ctx_for(base_inputs, base_inputs))
        assert "PASS" in result.render()
