"""Per-layer diff tests: error functions and discrepancy localization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.validate import (
    ERROR_FUNCTIONS,
    LayerDiff,
    cosine_distance,
    locate_discrepancies,
    max_abs_error,
    mean_abs_error,
    normalized_rmse,
    per_layer_diff,
    rmse,
)
from repro.util.errors import ValidationError


class TestErrorFunctions:
    def test_rmse_zero_for_identical(self, rng):
        x = rng.normal(size=(4, 5))
        assert rmse(x, x) == 0.0

    def test_rmse_known_value(self):
        assert rmse(np.array([1.0, 3.0]), np.array([0.0, 0.0])) == pytest.approx(
            np.sqrt(5))

    def test_rmse_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            rmse(np.zeros(3), np.zeros(4))

    def test_normalized_rmse_scale_free(self, rng):
        """nrMSE is invariant to rescaling both tensors — the property that
        makes it comparable across layers with different output ranges."""
        ref = rng.normal(size=(3, 4))
        edge = ref + rng.normal(0, 0.1, size=(3, 4))
        a = normalized_rmse(edge, ref)
        b = normalized_rmse(edge * 1000, ref * 1000)
        assert a == pytest.approx(b, rel=1e-9)

    def test_normalized_rmse_constant_reference(self):
        ref = np.full(5, 2.0)
        assert normalized_rmse(ref + 1.0, ref) == pytest.approx(1.0)

    def test_max_abs(self):
        assert max_abs_error(np.array([1.0, -5.0]), np.array([0.0, 0.0])) == 5.0

    def test_mean_abs(self):
        assert mean_abs_error(np.array([1.0, 3.0]), np.zeros(2)) == 2.0

    def test_cosine_distance_orthogonal(self):
        assert cosine_distance(np.array([1.0, 0.0]),
                               np.array([0.0, 1.0])) == pytest.approx(1.0)

    def test_cosine_distance_parallel(self, rng):
        x = rng.normal(size=10)
        assert cosine_distance(x, 3 * x) == pytest.approx(0.0, abs=1e-9)

    def test_cosine_zero_vectors(self):
        assert cosine_distance(np.zeros(3), np.zeros(3)) == 0.0

    def test_registry_complete(self):
        assert {"nrmse", "rmse", "max_abs", "mean_abs", "cosine"} == set(
            ERROR_FUNCTIONS)

    @given(st.floats(0.01, 10.0), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_nrmse_monotone_in_noise(self, noise, seed):
        rng = np.random.default_rng(seed)
        ref = rng.normal(size=64)
        small = normalized_rmse(ref + rng.normal(0, noise / 10, 64), ref)
        large = normalized_rmse(ref + rng.normal(0, noise, 64) * 10, ref)
        assert large >= small * 0.5  # noise dominates eventually


class TestLocateDiscrepancies:
    def diffs(self, errors):
        return [LayerDiff(i, f"layer{i}", "conv2d", e)
                for i, e in enumerate(errors)]

    def test_flags_jump(self):
        flagged = locate_discrepancies(
            self.diffs([0.01, 0.01, 0.5, 0.5]), threshold=0.1)
        assert [d.index for d in flagged] == [2]

    def test_below_threshold_ignored(self):
        assert locate_discrepancies(self.diffs([0.01, 0.05, 0.08])) == []

    def test_gradual_growth_not_flagged(self):
        # Accumulating quantization drift without a jump is not an op bug.
        flagged = locate_discrepancies(
            self.diffs([0.05, 0.11, 0.15, 0.2]), threshold=0.1, jump_factor=3.0)
        assert flagged == []

    def test_multiple_jumps(self):
        # After layer 1 the running level is 0.3: a later 0.8 (< 3x0.3) is
        # inherited drift, a later 1.2 (> 3x0.3) is a second independent jump.
        flagged = locate_discrepancies(
            self.diffs([0.001, 0.3, 0.002, 0.001, 0.8]), threshold=0.1)
        assert [d.index for d in flagged] == [1]
        flagged = locate_discrepancies(
            self.diffs([0.001, 0.3, 0.002, 0.001, 1.2]), threshold=0.1)
        assert [d.index for d in flagged] == [1, 4]


class TestPerLayerDiff:
    def make_logs(self, small_cnn, rng, perturb_layer=None):
        from repro.instrument import EXrayLog, EdgeMLMonitor
        from repro.runtime import Interpreter

        def capture():
            monitor = EdgeMLMonitor(per_layer=True)
            interp = Interpreter(small_cnn)
            monitor.attach(interp)
            for i in range(2):
                monitor.on_inf_start()
                interp.invoke(x[i:i + 1])
                monitor.on_inf_stop(interp)
            return monitor

        x = rng.normal(size=(2, 8, 8, 3)).astype(np.float32)
        ref = capture()
        edge = capture()
        if perturb_layer:
            for frame in edge.frames:
                frame.tensors[f"layer/{perturb_layer}"] = (
                    frame.tensors[f"layer/{perturb_layer}"] + 5.0)
        return EXrayLog.from_monitor(edge), EXrayLog.from_monitor(ref)

    def test_identical_runs_zero_diff(self, small_cnn, rng):
        edge, ref = self.make_logs(small_cnn, rng)
        diffs = per_layer_diff(edge, ref)
        assert all(d.error == 0.0 for d in diffs)
        assert [d.layer for d in diffs] == [n.name for n in small_cnn.nodes]

    def test_perturbed_layer_detected(self, small_cnn, rng):
        edge, ref = self.make_logs(small_cnn, rng, perturb_layer="dw")
        diffs = per_layer_diff(edge, ref)
        worst = max(diffs, key=lambda d: d.error)
        assert worst.layer == "dw" and worst.op == "depthwise_conv2d"

    def test_unknown_error_fn_rejected(self, small_cnn, rng):
        edge, ref = self.make_logs(small_cnn, rng)
        with pytest.raises(ValidationError):
            per_layer_diff(edge, ref, error_fn="hamming")

    def test_no_layer_logs_rejected(self, small_cnn, rng):
        from repro.instrument import EXrayLog, EdgeMLMonitor
        empty = EXrayLog.from_monitor(EdgeMLMonitor())
        with pytest.raises(ValidationError):
            per_layer_diff(empty, empty)

    def test_max_frames_limits_work(self, small_cnn, rng):
        edge, ref = self.make_logs(small_cnn, rng)
        diffs = per_layer_diff(edge, ref, max_frames=1)
        assert len(diffs) == len(small_cnn.nodes)

    def test_degenerate_reference_layer_flagged(self, small_cnn, rng):
        # A constant reference output makes nrMSE fall back to absolute
        # units (span 1.0); the diff must say so instead of silently mixing
        # unit systems.
        edge, ref = self.make_logs(small_cnn, rng)
        target = ref.layer_names()[1]
        for log in (edge, ref):
            for frame in log.frames:
                frame.tensors[f"layer/{target}"] = np.full((2, 2), 3.0)
        diffs = per_layer_diff(edge, ref)
        by_layer = {d.layer: d for d in diffs}
        assert by_layer[target].degenerate_ref
        assert not any(d.degenerate_ref for d in diffs if d.layer != target)

    def test_layer_schedule_stable_across_logs(self, small_cnn, rng):
        edge, ref = self.make_logs(small_cnn, rng)
        assert edge.layer_schedule() == ref.layer_schedule()
        assert all(isinstance(op, str) for _, op in edge.layer_schedule())
        # per_layer_diff threads exactly these keys into its diffs.
        diffs = per_layer_diff(edge, ref)
        assert [(d.layer, d.op) for d in diffs] == list(edge.layer_schedule())
