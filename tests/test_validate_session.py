"""DebugSession tests: the Figure-2 flowchart end to end on a small model."""

import numpy as np
import pytest

from repro.instrument import EdgeMLMonitor
from repro.pipelines import EdgeApp, ImagePreprocessConfig
from repro.util.errors import AssertionFailure
from repro.validate import DebugSession, FunctionAssertion


def make_app(graph, preprocess, per_layer=True, resolver=None, name="edge"):
    return EdgeApp(
        graph,
        preprocess=preprocess,
        device=None,
        resolver=resolver,
        monitor=EdgeMLMonitor(name=name, per_layer=per_layer),
    )


@pytest.fixture
def sensor(rng):
    return rng.integers(0, 255, (12, 16, 16, 3)).astype(np.uint8)


@pytest.fixture
def correct_preprocess():
    return ImagePreprocessConfig((8, 8)).apply


def labels_from(graph, preprocess, sensor):
    """Use the model's own (float) predictions as labels so accuracy is 1.0
    on the clean pipeline by construction."""
    from repro.runtime import Interpreter
    out = Interpreter(graph).invoke_single(preprocess(sensor))
    return out.argmax(axis=1)


class TestHealthyPath:
    def test_no_issues_on_identical_pipelines(self, small_cnn_mobile, sensor,
                                              correct_preprocess):
        labels = labels_from(small_cnn_mobile, correct_preprocess, sensor)
        edge = make_app(small_cnn_mobile, correct_preprocess)
        edge.run(sensor, labels)
        ref = make_app(small_cnn_mobile, correct_preprocess, name="reference")
        ref.run(sensor, labels)
        report = DebugSession(edge.log(), ref.log()).run()
        assert report.healthy
        assert not report.accuracy.degraded
        assert report.assertions == []  # flowchart short-circuits when healthy

    def test_always_run_assertions(self, small_cnn_mobile, sensor,
                                   correct_preprocess):
        labels = labels_from(small_cnn_mobile, correct_preprocess, sensor)
        edge = make_app(small_cnn_mobile, correct_preprocess)
        edge.run(sensor, labels)
        ref = make_app(small_cnn_mobile, correct_preprocess, name="reference")
        ref.run(sensor, labels)
        report = DebugSession(edge.log(), ref.log()).run(
            always_run_assertions=True)
        # Correctness assertions must pass on identical pipelines. (The
        # straggler check may legitimately fire: a tiny model's depthwise
        # conv genuinely dominates its latency profile.)
        correctness = [a for a in report.assertions
                       if a.check != "per_layer_latency"]
        assert correctness and all(a.passed for a in correctness)


class TestBuggyPath:
    def test_channel_bug_diagnosed(self, small_cnn_mobile, sensor,
                                   correct_preprocess):
        labels = labels_from(small_cnn_mobile, correct_preprocess, sensor)
        buggy = ImagePreprocessConfig((8, 8), channel_order="bgr").apply
        edge = make_app(small_cnn_mobile, buggy)
        edge.run(sensor, labels)
        ref = make_app(small_cnn_mobile, correct_preprocess, name="reference")
        ref.run(sensor, labels)
        report = DebugSession(edge.log(), ref.log()).run(
            always_run_assertions=True)
        failures = {a.check: a for a in report.issues}
        assert "channel_arrangement" in failures
        assert failures["channel_arrangement"].diagnosis == "BGR->RGB"

    def test_normalization_bug_diagnosed(self, small_cnn_mobile, sensor,
                                         correct_preprocess):
        labels = labels_from(small_cnn_mobile, correct_preprocess, sensor)
        buggy = ImagePreprocessConfig((8, 8), normalization="[0,1]").apply
        edge = make_app(small_cnn_mobile, buggy)
        edge.run(sensor, labels)
        ref = make_app(small_cnn_mobile, correct_preprocess, name="reference")
        ref.run(sensor, labels)
        report = DebugSession(edge.log(), ref.log()).run(
            always_run_assertions=True)
        checks = {a.check for a in report.issues}
        assert "normalization_range" in checks

    def test_kernel_bug_localized_per_layer(self, small_cnn_quantized,
                                            small_cnn_mobile, sensor,
                                            correct_preprocess):
        from repro.kernels.quantized import PAPER_OPTIMIZED_BUGS
        from repro.runtime import OpResolver
        labels = labels_from(small_cnn_mobile, correct_preprocess, sensor)
        edge = make_app(small_cnn_quantized, correct_preprocess,
                        resolver=OpResolver(bugs=PAPER_OPTIMIZED_BUGS))
        edge.run(sensor, labels)
        ref = make_app(small_cnn_mobile, correct_preprocess, name="reference")
        ref.run(sensor, labels)
        report = DebugSession(edge.log(), ref.log(), tolerance=0.0).run(
            always_run_assertions=True)
        assert report.layer_diffs  # per-layer stage ran
        dw_diff = next(d for d in report.layer_diffs if d.op == "depthwise_conv2d")
        early = [d for d in report.layer_diffs if d.index < dw_diff.index]
        assert all(d.error < dw_diff.error for d in early)

    def test_custom_assertion_runs(self, small_cnn_mobile, sensor,
                                   correct_preprocess):
        labels = labels_from(small_cnn_mobile, correct_preprocess, sensor)
        edge = make_app(small_cnn_mobile, correct_preprocess)
        edge.run(sensor, labels)
        ref = make_app(small_cnn_mobile, correct_preprocess, name="reference")
        ref.run(sensor, labels)

        def lane_distance(ctx):
            raise AssertionFailure("lane_distance", "lane offset 14px > 5px")

        report = DebugSession(edge.log(), ref.log()).run(
            assertions=[lane_distance], always_run_assertions=True)
        assert any(a.check == "lane_distance" and not a.passed
                   for a in report.assertions)


class TestReportRendering:
    def test_render_mentions_verdict(self, small_cnn_mobile, sensor,
                                     correct_preprocess):
        labels = labels_from(small_cnn_mobile, correct_preprocess, sensor)
        edge = make_app(small_cnn_mobile, correct_preprocess)
        edge.run(sensor, labels)
        ref = make_app(small_cnn_mobile, correct_preprocess, name="reference")
        ref.run(sensor, labels)
        text = DebugSession(edge.log(), ref.log()).run().render()
        assert "verdict" in text and "accuracy" in text

    def test_render_lists_flagged_layers(self, small_cnn_quantized,
                                         small_cnn_mobile, sensor,
                                         correct_preprocess, rng):
        from repro.kernels.quantized import PAPER_OPTIMIZED_BUGS
        from repro.runtime import OpResolver
        labels = rng.integers(0, 4, len(sensor))
        edge = make_app(small_cnn_quantized, correct_preprocess,
                        resolver=OpResolver(bugs=PAPER_OPTIMIZED_BUGS))
        edge.run(sensor, labels)
        ref = make_app(small_cnn_mobile, correct_preprocess, name="reference")
        ref.run(sensor, labels)
        report = DebugSession(edge.log(), ref.log(), tolerance=0.0).run(
            always_run_assertions=True, drift_threshold=0.05)
        text = report.render()
        assert "nrMSE" in text or "per-layer" in text
