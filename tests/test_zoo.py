"""Model-zoo tests: registry completeness, stage equivalence, trained quality.

These use the on-disk training cache; the first run trains the models it
touches (deterministic, seeded).
"""

import numpy as np
import pytest

from repro.convert import QuantizationConfig
from repro.metrics import top_1_accuracy
from repro.runtime import Interpreter, OpResolver, ReferenceOpResolver
from repro.util.errors import ReproError
from repro.zoo import (
    IMAGE_CLASSIFIERS,
    build_checkpoint,
    eval_data,
    get_entry,
    get_model,
    get_trained,
    list_models,
)
from repro.zoo.arch import arch_signature


EXPECTED_MODELS = {
    "micro_mobilenet_v1", "micro_mobilenet_v2", "micro_mobilenet_v3",
    "micro_inception", "micro_resnet", "micro_densenet", "effdet_lite",
    "ssd_lite", "frcnn_lite", "deeplab_lite", "speech_cnn_a", "speech_cnn_b",
    "nnlm_lite", "micro_bert",
}


class TestRegistry:
    def test_all_models_registered(self):
        assert set(list_models()) == EXPECTED_MODELS

    def test_unknown_model_helpful_error(self):
        with pytest.raises(ReproError, match="available"):
            get_entry("resnet152")

    def test_entries_carry_pipelines(self):
        for name in list_models():
            entry = get_entry(name)
            assert entry.pipeline["task"] == entry.task
            assert entry.family

    def test_image_lineup_matches_paper_tables(self):
        assert len(IMAGE_CLASSIFIERS) == 6
        families = {get_entry(n).family for n in IMAGE_CLASSIFIERS}
        assert "Mobilenet v2" in families and "Densenet 121" in families

    def test_arch_signature_stable_and_sensitive(self):
        a = arch_signature(get_entry("micro_mobilenet_v2").arch_fn())
        b = arch_signature(get_entry("micro_mobilenet_v2").arch_fn())
        c = arch_signature(get_entry("micro_mobilenet_v1").arch_fn())
        assert a == b and a != c


class TestTrainedQuality:
    def test_mobilenet_v2_accuracy(self):
        _, _, meta = get_trained("micro_mobilenet_v2")
        assert meta["val_accuracy"] > 0.85

    def test_speech_accuracy(self):
        _, _, meta = get_trained("speech_cnn_a")
        assert meta["val_accuracy"] > 0.9

    def test_text_accuracy(self):
        _, _, meta = get_trained("nnlm_lite")
        assert meta["val_accuracy"] > 0.85

    def test_loss_decreases(self):
        _, _, meta = get_trained("micro_mobilenet_v2")
        history = meta["loss_history"]
        assert history[-1] < history[0] / 2

    def test_training_deterministic_via_cache(self):
        a = get_trained("micro_mobilenet_v2")
        b = get_trained("micro_mobilenet_v2")
        np.testing.assert_array_equal(a[0]["stem.w"], b[0]["stem.w"])


class TestStages:
    def test_checkpoint_has_bn_and_activations(self):
        graph = build_checkpoint("micro_mobilenet_v2")
        ops = {n.op for n in graph.nodes}
        assert "batch_norm" in ops and "activation" in ops
        assert graph.metadata["stage"] == "checkpoint"
        assert graph.metadata["pipeline"]["task"] == "classification"

    def test_mobile_folds_everything(self):
        mobile = get_model("micro_mobilenet_v2", "mobile")
        ops = {n.op for n in mobile.nodes}
        assert "batch_norm" not in ops
        assert mobile.num_layers() < build_checkpoint(
            "micro_mobilenet_v2").num_layers()

    def test_v2_second_layer_is_depthwise(self):
        """Figure 6's premise: MobileNet v2's 2nd (mobile) layer is a dwconv."""
        mobile = get_model("micro_mobilenet_v2", "mobile")
        assert mobile.nodes[1].op == "depthwise_conv2d"

    def test_v3_has_avgpool_in_every_se_block(self):
        mobile = get_model("micro_mobilenet_v3", "mobile")
        squeezes = [n for n in mobile.nodes
                    if n.op == "avg_pool2d" and "se" in n.name]
        assert len(squeezes) >= 4  # one full-extent AveragePool per SE block

    def test_mobile_equals_checkpoint(self):
        x, _ = eval_data("micro_mobilenet_v2", 32)
        ckpt = Interpreter(build_checkpoint("micro_mobilenet_v2")).invoke_single(x)
        mobile = Interpreter(get_model("micro_mobilenet_v2", "mobile")).invoke_single(x)
        np.testing.assert_allclose(ckpt, mobile, atol=1e-4)

    def test_quantized_close_to_float(self):
        x, labels = eval_data("micro_mobilenet_v2", 128)
        mobile = get_model("micro_mobilenet_v2", "mobile")
        quant = get_model("micro_mobilenet_v2", "quantized")
        acc_f = top_1_accuracy(Interpreter(mobile).invoke_single(x), labels)
        acc_q = top_1_accuracy(Interpreter(quant).invoke_single(x), labels)
        assert abs(acc_f - acc_q) < 0.06  # Fig 5: +-3% for correct kernels

    def test_quantized_resolvers_bit_identical(self):
        x, _ = eval_data("micro_mobilenet_v1", 32)
        quant = get_model("micro_mobilenet_v1", "quantized")
        a = Interpreter(quant, OpResolver()).invoke_single(x)
        b = Interpreter(quant, ReferenceOpResolver()).invoke_single(x)
        np.testing.assert_array_equal(a, b)

    def test_quant_config_respected(self):
        quant = get_model(
            "micro_mobilenet_v1", "quantized",
            QuantizationConfig(per_channel_weights=False))
        node = next(n for n in quant.nodes if n.op == "conv2d")
        assert not node.weight_quant["weights"].per_channel

    def test_unknown_stage_rejected(self):
        with pytest.raises(ReproError):
            get_model("micro_mobilenet_v1", "tflite")

    def test_effdet_normalization_in_graph(self):
        mobile = get_model("effdet_lite", "mobile")
        assert mobile.nodes[0].op == "image_normalize"

    def test_inception_expects_bgr(self):
        entry = get_entry("micro_inception")
        assert entry.pipeline["image_preprocess"]["channel_order"] == "bgr"

    def test_text_models_run(self):
        ids, labels = eval_data("nnlm_lite", 64)
        graph = get_model("nnlm_lite", "mobile")
        out = Interpreter(graph).invoke_single(ids)
        assert top_1_accuracy(out, labels) > 0.8

    def test_detector_runs_and_detects(self):
        from repro.pipelines.detection import decode_predictions
        from repro.metrics import mean_average_precision
        x, anns = eval_data("ssd_lite", 64)
        graph = get_model("ssd_lite", "mobile")
        head = Interpreter(graph).invoke_single(x)
        decoded = decode_predictions(head, 4, 48)
        gt = [[(a.label, a.box) for a in img] for img in anns]
        assert mean_average_precision(decoded, gt, 4) > 0.3

    def test_segmenter_runs(self):
        from repro.metrics import mean_iou
        x, masks = eval_data("deeplab_lite", 32)
        graph = get_model("deeplab_lite", "mobile")
        logits = Interpreter(graph).invoke_single(x)
        assert mean_iou(logits.argmax(-1), masks, 4) > 0.5
