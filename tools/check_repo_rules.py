#!/usr/bin/env python3
"""Repo-level AST lint: conventions the test suite can't see.

Four rules:

* **no-numpy-random** (kernel modules only): kernels must never reach into
  ``numpy.random`` directly.  Kernels are supposed to be pure array
  transforms — any randomness (dropout masks, fault injection, noise
  models) has to flow through ``repro.util.rng`` so sweeps stay
  reproducible under a single seed.  A stray ``np.random.normal(...)``
  inside a kernel silently breaks run-to-run parity, which is exactly the
  class of bug this repo exists to catch in *other* people's deployments.
* **no-mutable-default** (all of ``src/``): no list/dict/set literals (or
  comprehensions) as function-argument defaults — the one shared instance
  mutates across calls, the classic Python footgun.
* **no-bare-except** (all of ``src/``): ``except:`` with no exception type
  swallows ``KeyboardInterrupt``/``SystemExit`` and hides real bugs; name
  the exception (at minimum ``except Exception:``).
* **alias-annotation** (executor modules only, ``executors*.py``): a
  top-level executor that returns ``something.reshape(...)`` hands the
  runtime a *view* of its input.  The arena planner merges the slot of a
  view op with its input's slot only when the executor is decorated with
  ``@aliases_input``; an undecorated reshape-return silently double-counts
  memory at best and, under an arena layout that was verified against the
  declared aliases, corrupts data at worst.  Either decorate the executor
  or materialize a copy.

Stdlib only (``ast``) so CI can run it before any dependency install.

Usage::

    python tools/check_repo_rules.py [root ...]

Exits 1 and prints ``path:line: message`` for every violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC_ROOT = Path("src")
KERNEL_ROOT = Path("src/repro/kernels")
SANCTIONED = "repro.util.rng"

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)


def _check_numpy_random(path: str, tree: ast.AST) -> list[tuple[str, int, str]]:
    """Kernel-only rule: no direct numpy.random use."""
    violations: list[tuple[str, int, str]] = []
    numpy_aliases: set[str] = set()

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_aliases.add(alias.asname or "numpy")
                elif alias.name.startswith("numpy.random"):
                    violations.append((path, node.lineno,
                                       f"imports {alias.name}; use "
                                       f"{SANCTIONED} instead"))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        violations.append((path, node.lineno,
                                           "imports numpy.random; use "
                                           f"{SANCTIONED} instead"))
            elif module.startswith("numpy.random"):
                violations.append((path, node.lineno,
                                   f"imports from {module}; use "
                                   f"{SANCTIONED} instead"))

    for node in ast.walk(tree):
        if (isinstance(node, ast.Attribute) and node.attr == "random"
                and isinstance(node.value, ast.Name)
                and node.value.id in numpy_aliases):
            violations.append((path, node.lineno,
                               f"calls {node.value.id}.random directly; "
                               f"use {SANCTIONED} instead"))
    return violations


def _check_mutable_defaults(path: str,
                            tree: ast.AST) -> list[tuple[str, int, str]]:
    """No list/dict/set literals (or comprehensions) as argument defaults."""
    violations: list[tuple[str, int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + \
            [d for d in node.args.kw_defaults if d is not None]
        name = getattr(node, "name", "<lambda>")
        for default in defaults:
            if isinstance(default, _MUTABLE_LITERALS):
                violations.append((
                    path, default.lineno,
                    f"mutable default argument in {name!r}; the instance "
                    "is shared across calls — default to None and build "
                    "inside the body"))
    return violations


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def _check_executor_view_annotations(
        path: str, tree: ast.AST) -> list[tuple[str, int, str]]:
    """Executor-only rule: reshape-returns must declare ``@aliases_input``.

    Only *direct* ``return x.reshape(...)`` statements in top-level
    functions are flagged — a reshape that feeds further computation
    produces a fresh array downstream and never escapes as a view.
    """
    violations: list[tuple[str, int, str]] = []
    body = tree.body if isinstance(tree, ast.Module) else []
    for fn in body:
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if "aliases_input" in _decorator_names(fn):
            continue
        for node in ast.walk(fn):
            if (isinstance(node, ast.Return)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "reshape"):
                violations.append((
                    path, node.lineno,
                    f"executor {fn.name!r} returns a .reshape(...) view "
                    "without an @aliases_input annotation; the runtime "
                    "would double-count (or arena-corrupt) the buffer — "
                    "decorate the executor or return a copy"))
    return violations


def _check_bare_except(path: str, tree: ast.AST) -> list[tuple[str, int, str]]:
    """No ``except:`` without an exception type."""
    return [(path, node.lineno,
             "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
             "name the exception type")
            for node in ast.walk(tree)
            if isinstance(node, ast.ExceptHandler) and node.type is None]


def check_source(path: str, text: str) -> list[tuple[str, int, str]]:
    """Return ``(path, line, message)`` for every rule violation in a file."""
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, f"cannot parse: {exc.msg}")]

    violations = _check_mutable_defaults(path, tree)
    violations += _check_bare_except(path, tree)
    if KERNEL_ROOT in Path(path).parents:
        violations += _check_numpy_random(path, tree)
    if Path(path).name.startswith("executors") and path.endswith(".py"):
        violations += _check_executor_view_annotations(path, tree)
    return sorted(violations, key=lambda v: v[1])


def check_tree(root: Path) -> list[tuple[str, int, str]]:
    violations: list[tuple[str, int, str]] = []
    for path in sorted(root.rglob("*.py")):
        violations.extend(check_source(str(path), path.read_text()))
    return violations


def main(argv: list[str] | None = None) -> int:
    roots = [Path(p) for p in (argv if argv is not None else sys.argv[1:])]
    if not roots:
        roots = [SRC_ROOT]
    missing = [r for r in roots if not r.exists()]
    if missing:
        print(f"check_repo_rules: no such directory: {missing[0]}",
              file=sys.stderr)
        return 2
    violations = [v for root in roots for v in check_tree(root)]
    for path, line, message in violations:
        print(f"{path}:{line}: {message}")
    if violations:
        print(f"check_repo_rules: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    checked = sum(1 for root in roots for _ in root.rglob("*.py"))
    print(f"check_repo_rules: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
